//! TCP header codec plus a sequence-number-accurate segmenter/reassembler.
//!
//! The simulated fabric is lossless and the round-trip time is microseconds,
//! so congestion control and retransmission never engage; what *does* matter
//! for iWARP is byte-stream semantics: DDP segments ride a stream that the
//! receiver may see re-chunked, which is why MPA needs markers. The
//! [`TcpSegmenter`]/[`TcpReassembler`] pair model exactly that: an ordered,
//! reliable byte stream cut into MSS-sized segments.

/// TCP header length without options.
pub const TCP_HEADER_LEN: usize = 20;
/// Maximum segment size on a 1500-byte MTU: 1500 − 20 (IP) − 20 (TCP).
pub const TCP_MSS: u64 = 1460;

/// A TCP header (the fields the offload engines actually vary).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgement.
    pub ack: u32,
    /// Flags: bit 4 = ACK, bit 3 = PSH, bit 1 = SYN, bit 0 = FIN.
    pub flags: u8,
    /// Advertised receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Serialize into 20 bytes (checksum left to the caller's pseudo-header
    /// pass, as TOE hardware does it last).
    pub fn encode(&self) -> [u8; TCP_HEADER_LEN] {
        let mut out = [0u8; TCP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 5 << 4; // data offset = 5 words
        out[13] = self.flags;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out
    }

    /// Parse from bytes; `None` if too short.
    pub fn decode(data: &[u8]) -> Option<TcpHeader> {
        if data.len() < TCP_HEADER_LEN {
            return None;
        }
        Some(TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: data[13],
            window: u16::from_be_bytes([data[14], data[15]]),
        })
    }
}

/// One segment produced by the segmenter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpSegment {
    /// Stream sequence number of the first byte.
    pub seq: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Cuts an outgoing byte stream into ≤MSS segments with correct sequence
/// numbers (wrapping arithmetic, as on the wire).
#[derive(Debug)]
pub struct TcpSegmenter {
    next_seq: u32,
    mss: usize,
    /// Conformance oracle: emitted segments must be sequence-contiguous
    /// (rule `ether.tcp-seq`).
    #[cfg(feature = "simcheck")]
    check: simcheck::ether::TcpTxOracle,
}

impl TcpSegmenter {
    /// Start a stream at initial sequence number `isn` with segment size
    /// `mss`.
    pub fn new(isn: u32, mss: usize) -> Self {
        assert!(mss > 0);
        TcpSegmenter {
            next_seq: isn,
            mss,
            #[cfg(feature = "simcheck")]
            check: simcheck::ether::TcpTxOracle::with_origin(u64::from(isn), isn),
        }
    }

    /// Append `data` to the stream, producing the segments it occupies.
    pub fn push(&mut self, data: &[u8]) -> Vec<TcpSegment> {
        let mut out = Vec::with_capacity(data.len() / self.mss + 1);
        for chunk in data.chunks(self.mss) {
            #[cfg(feature = "simcheck")]
            let _ = self
                .check
                .observe_segment(self.next_seq, chunk.len() as u32, None);
            out.push(TcpSegment {
                seq: self.next_seq,
                payload: chunk.to_vec(),
            });
            self.next_seq = self.next_seq.wrapping_add(chunk.len() as u32);
        }
        out
    }

    /// Sequence number the next pushed byte will get.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }
}

/// Reassembles segments (possibly out of order) back into the byte stream.
#[derive(Debug)]
pub struct TcpReassembler {
    expected: u32,
    /// Out-of-order segments keyed by sequence number.
    pending: std::collections::BTreeMap<u32, Vec<u8>>,
    assembled: Vec<u8>,
    /// Conformance oracle: the expected-seq cursor advances exactly by the
    /// bytes delivered (rule `ether.tcp-seq`).
    #[cfg(feature = "simcheck")]
    check: simcheck::ether::TcpRxOracle,
}

impl TcpReassembler {
    /// Start expecting sequence number `isn`.
    pub fn new(isn: u32) -> Self {
        TcpReassembler {
            expected: isn,
            pending: std::collections::BTreeMap::new(),
            assembled: Vec::new(),
            #[cfg(feature = "simcheck")]
            check: simcheck::ether::TcpRxOracle::with_origin(u64::from(isn), isn),
        }
    }

    /// Offer a segment; in-order data (including data unlocked from the
    /// out-of-order store) is appended to the assembled stream. Segments
    /// entirely before the expected sequence number (duplicates) are
    /// dropped; a segment overlapping the cut has its stale prefix trimmed,
    /// and a segment overlapping buffered out-of-order data is trimmed
    /// against the neighbouring `pending` entries before insertion, so a
    /// retransmission re-chunked at different boundaries can neither shrink
    /// previously buffered data nor strand an entry the in-order drain will
    /// never reach.
    pub fn offer(&mut self, seg: TcpSegment) {
        let mut seq = seg.seq;
        let mut payload = seg.payload;
        if wrap_lt(seq, self.expected) {
            let stale = self.expected.wrapping_sub(seq) as usize;
            if stale >= payload.len() {
                return; // entirely duplicate
            }
            payload.drain(..stale);
            seq = self.expected;
        }
        // Work in offsets relative to `expected` so overlap comparisons are
        // wrap-safe: every live byte sits within 2^32 of the cursor, and the
        // store never holds data behind it (the invariant this trim keeps).
        let base = self.expected;
        let mut start = u64::from(seq.wrapping_sub(base));
        let mut end = start + payload.len() as u64;
        let overlaps: Vec<(u64, u64, u32)> = self
            .pending
            .iter()
            .map(|(&k, v)| {
                let s = u64::from(k.wrapping_sub(base));
                (s, s + v.len() as u64, k)
            })
            .filter(|&(s, e, _)| s < end && start < e)
            .collect();
        for (ps, pe, key) in overlaps {
            if ps <= start && end <= pe {
                // Entirely within buffered data: nothing new to keep. The
                // buffered entry wins — it is at least as long.
                payload.clear();
                break;
            } else if ps <= start {
                // Buffered entry covers our head: drop the covered prefix.
                payload.drain(..(pe - start) as usize);
                start = pe;
            } else if end <= pe {
                // Buffered entry covers our tail: drop the covered suffix.
                payload.truncate((ps - start) as usize);
                end = ps;
            } else {
                // We strictly cover the buffered (shorter) entry: replace
                // it, rather than letting an exact-key insert shadow it or
                // a key mismatch orphan it behind the advancing cursor.
                self.pending.remove(&key);
            }
        }
        if !payload.is_empty() {
            self.pending
                .insert(base.wrapping_add(start as u32), payload);
        }
        #[cfg(feature = "simcheck")]
        let before = self.expected;
        #[cfg(feature = "simcheck")]
        let mut delivered: u32 = 0;
        while let Some(p) = self.pending.remove(&self.expected) {
            self.expected = self.expected.wrapping_add(p.len() as u32);
            #[cfg(feature = "simcheck")]
            {
                delivered = delivered.wrapping_add(p.len() as u32);
            }
            self.assembled.extend_from_slice(&p);
        }
        #[cfg(feature = "simcheck")]
        let _ = self
            .check
            .observe_advance(before, self.expected, delivered, None);
    }

    /// Drain the in-order assembled bytes.
    pub fn take_assembled(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.assembled)
    }

    /// Next expected sequence number (the cumulative ACK value).
    pub fn expected(&self) -> u32 {
        self.expected
    }
}

#[inline]
fn wrap_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = TcpHeader {
            src_port: 5001,
            dst_port: 4096,
            seq: 0xDEADBEEF,
            ack: 42,
            flags: 0x18,
            window: 65535,
        };
        assert_eq!(TcpHeader::decode(&h.encode()), Some(h));
    }

    #[test]
    fn segmenter_respects_mss_and_sequences() {
        let mut seg = TcpSegmenter::new(1000, 4);
        let segs = seg.push(b"abcdefghij");
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].seq, 1000);
        assert_eq!(segs[1].seq, 1004);
        assert_eq!(segs[2].seq, 1008);
        assert_eq!(segs[2].payload, b"ij");
        assert_eq!(seg.next_seq(), 1010);
    }

    #[test]
    fn reassembly_in_order() {
        let mut seg = TcpSegmenter::new(0, 3);
        let mut rea = TcpReassembler::new(0);
        for s in seg.push(b"hello world") {
            rea.offer(s);
        }
        assert_eq!(rea.take_assembled(), b"hello world");
        assert_eq!(rea.expected(), 11);
    }

    #[test]
    fn reassembly_out_of_order() {
        let mut seg = TcpSegmenter::new(500, 2);
        let mut rea = TcpReassembler::new(500);
        let mut segs = seg.push(b"abcdef");
        segs.reverse();
        for s in segs {
            rea.offer(s);
        }
        assert_eq!(rea.take_assembled(), b"abcdef");
    }

    #[test]
    fn sequence_wraparound() {
        let isn = u32::MAX - 2;
        let mut seg = TcpSegmenter::new(isn, 2);
        let mut rea = TcpReassembler::new(isn);
        for s in seg.push(b"wrap!") {
            rea.offer(s);
        }
        assert_eq!(rea.take_assembled(), b"wrap!");
        assert_eq!(rea.expected(), isn.wrapping_add(5));
    }

    #[test]
    fn duplicate_segment_is_ignored() {
        let mut seg = TcpSegmenter::new(0, 4);
        let segs = seg.push(b"abcd1234");
        let mut rea = TcpReassembler::new(0);
        rea.offer(segs[0].clone());
        rea.offer(segs[0].clone()); // duplicate
        rea.offer(segs[1].clone());
        assert_eq!(rea.take_assembled(), b"abcd1234");
    }

    #[test]
    fn wrap_lt_orders_across_the_seam() {
        assert!(wrap_lt(u32::MAX, 0));
        assert!(wrap_lt(u32::MAX - 10, u32::MAX));
        assert!(wrap_lt(u32::MAX, 5));
        assert!(!wrap_lt(0, u32::MAX));
        assert!(!wrap_lt(5, u32::MAX));
        assert!(!wrap_lt(7, 7));
        // Half-window boundary: 2^31 apart is "greater", one less is "less".
        assert!(wrap_lt(0, (1 << 31) - 1));
        assert!(!wrap_lt(0, 1 << 31));
    }

    #[test]
    fn shorter_retransmission_does_not_shrink_buffered_data() {
        // Buffer the long out-of-order segment [4, 12), then replay a
        // shorter one at the same key. The exact-key insert used to replace
        // the 8-byte payload with the 3-byte one, losing [7, 12) forever.
        let mut rea = TcpReassembler::new(0);
        rea.offer(TcpSegment {
            seq: 4,
            payload: b"efghijkl".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: 4,
            payload: b"efg".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: 0,
            payload: b"abcd".to_vec(),
        });
        assert_eq!(rea.take_assembled(), b"abcdefghijkl");
        assert_eq!(rea.expected(), 12);
    }

    #[test]
    fn segment_inside_pending_range_is_not_orphaned() {
        // A replay whose seq falls strictly inside a buffered range used to
        // be inserted at its own key; once `expected` jumped past that key
        // via the longer entry, the orphan sat in `pending` forever.
        let mut rea = TcpReassembler::new(0);
        rea.offer(TcpSegment {
            seq: 10,
            payload: b"klmnopqrst".to_vec(), // [10, 20)
        });
        rea.offer(TcpSegment {
            seq: 12,
            payload: b"mno".to_vec(), // strictly inside [10, 20)
        });
        rea.offer(TcpSegment {
            seq: 0,
            payload: b"abcdefghij".to_vec(),
        });
        assert_eq!(rea.take_assembled(), b"abcdefghijklmnopqrst");
        assert_eq!(rea.expected(), 20);
        assert!(rea.pending.is_empty(), "no orphaned entries may remain");
    }

    #[test]
    fn partial_overlaps_are_trimmed_against_neighbours() {
        // Stream "abcdefghij"; buffer [2,5) and [7,9), then offer [3,8),
        // which overlaps both neighbours: head and tail must be trimmed so
        // only [5,7) is newly inserted.
        let mut rea = TcpReassembler::new(0);
        rea.offer(TcpSegment {
            seq: 2,
            payload: b"cde".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: 7,
            payload: b"hi".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: 3,
            payload: b"defgh".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: 0,
            payload: b"ab".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: 9,
            payload: b"j".to_vec(),
        });
        assert_eq!(rea.take_assembled(), b"abcdefghij");
        assert!(rea.pending.is_empty());
    }

    #[test]
    fn superset_retransmission_replaces_covered_entries() {
        // A wide replay that strictly covers two disjoint buffered shards
        // replaces both (same stream bytes, one entry).
        let mut rea = TcpReassembler::new(0);
        rea.offer(TcpSegment {
            seq: 3,
            payload: b"de".to_vec(), // [3, 5)
        });
        rea.offer(TcpSegment {
            seq: 7,
            payload: b"h".to_vec(), // [7, 8)
        });
        rea.offer(TcpSegment {
            seq: 2,
            payload: b"cdefghi".to_vec(), // [2, 9) covers both
        });
        assert_eq!(rea.pending.len(), 1);
        rea.offer(TcpSegment {
            seq: 0,
            payload: b"ab".to_vec(),
        });
        assert_eq!(rea.take_assembled(), b"abcdefghi");
        assert!(rea.pending.is_empty());
    }

    #[test]
    fn overlap_trim_is_wrap_safe_near_u32_max() {
        // Same shapes as above, but the live window straddles the sequence
        // seam: isn = MAX - 3, so buffered entries sit on both sides of 0.
        let isn = u32::MAX - 3;
        let mut rea = TcpReassembler::new(isn);
        // Buffer [isn+2, isn+10) = "cdefghij" (crosses the seam).
        rea.offer(TcpSegment {
            seq: isn.wrapping_add(2),
            payload: b"cdefghij".to_vec(),
        });
        // Shorter replay at the same key must not shrink it...
        rea.offer(TcpSegment {
            seq: isn.wrapping_add(2),
            payload: b"cde".to_vec(),
        });
        // ...and an interior replay crossing the seam must not orphan.
        rea.offer(TcpSegment {
            seq: isn.wrapping_add(3),
            payload: b"defg".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: isn,
            payload: b"ab".to_vec(),
        });
        assert_eq!(rea.take_assembled(), b"abcdefghij");
        assert_eq!(rea.expected(), isn.wrapping_add(10));
        assert!(rea.pending.is_empty());
    }

    #[test]
    fn stale_prefix_trim_is_wrap_safe() {
        // expected sits just past the seam; a retransmission from before the
        // seam overlapping the cut keeps only its fresh suffix.
        let isn = u32::MAX - 1;
        let mut seg = TcpSegmenter::new(isn, 4);
        let segs = seg.push(b"wxyzabcd");
        let mut rea = TcpReassembler::new(isn);
        rea.offer(segs[0].clone()); // [MAX-1, 2): expected -> 2
                                    // Replay of [MAX-1, 3): 4 stale bytes, 1 fresh ("a" at seq 2).
        rea.offer(TcpSegment {
            seq: isn,
            payload: b"wxyza".to_vec(),
        });
        rea.offer(TcpSegment {
            seq: 3,
            payload: b"bcd".to_vec(),
        });
        assert_eq!(rea.take_assembled(), b"wxyzabcd");
        assert_eq!(rea.expected(), isn.wrapping_add(8));
    }
}
