//! Cut-through Ethernet switch timing model.
//!
//! The testbed used a Fujitsu XG700 12-port 10GbE switch (cut-through,
//! sub-microsecond). A cut-through switch begins forwarding once the header
//! is in, so its contribution to message latency is a fixed port-to-port
//! delay; its contribution to bandwidth is a per-egress-port serialization
//! pipe (shared when multiple flows converge on one output).

use simnet::{ByteRate, Pipe, Sim, SimDuration, Stage};

/// Switch configuration.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// Per-port bandwidth.
    pub port_bytes_per_sec: ByteRate,
    /// Fixed port-to-port forwarding latency.
    pub forwarding_latency: SimDuration,
}

impl SwitchConfig {
    /// Fujitsu XG700-class 10GbE cut-through switch.
    pub fn xg700() -> Self {
        SwitchConfig {
            port_bytes_per_sec: ByteRate::from_gbps(10),
            forwarding_latency: SimDuration::from_nanos(450),
        }
    }

    /// Myricom Myri-10G 16-port switch (lower latency crossbar).
    pub fn myri_10g() -> Self {
        SwitchConfig {
            port_bytes_per_sec: ByteRate::from_gbps(10),
            forwarding_latency: SimDuration::from_nanos(200),
        }
    }

    /// Mellanox 4X InfiniBand switch: 1 GB/s data per port, ~200 ns hop.
    pub fn mellanox_ib() -> Self {
        SwitchConfig {
            port_bytes_per_sec: ByteRate::from_gbps(8),
            forwarding_latency: SimDuration::from_nanos(200),
        }
    }
}

/// A cut-through switch with per-port egress pipes.
pub struct CutThroughSwitch {
    config: SwitchConfig,
    egress: Vec<Pipe>,
}

impl CutThroughSwitch {
    /// Build a switch with `ports` ports.
    pub fn new(sim: &Sim, config: SwitchConfig, ports: usize) -> Self {
        CutThroughSwitch {
            config,
            egress: (0..ports)
                .map(|_| Pipe::new(sim, config.port_bytes_per_sec, SimDuration::ZERO))
                .collect(),
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.egress.len()
    }

    /// Configuration in effect.
    pub fn config(&self) -> SwitchConfig {
        self.config
    }

    /// The pipeline stage a flow towards `dst_port` must traverse: the
    /// egress serialization pipe plus the forwarding latency.
    pub fn stage_to(&self, dst_port: usize) -> Stage {
        Stage::new(
            self.egress[dst_port].clone(),
            self.config.forwarding_latency,
        )
    }

    /// Egress utilization counters for a port: `(busy, bytes)`.
    pub fn egress_stats(&self, port: usize) -> (simnet::SimDuration, u64) {
        (
            self.egress[port].total_busy(),
            self.egress[port].total_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Bytes, Pipeline, SimTime};

    #[test]
    fn two_flows_share_one_egress_port() {
        let sim = Sim::new();
        let sw = CutThroughSwitch::new(&sim, SwitchConfig::xg700(), 4);
        // Both flows target port 0: they serialize on its egress pipe.
        let mk = |_: usize| Pipeline::new(&sim, vec![sw.stage_to(0)], Bytes::new(1500));
        let p1 = mk(0);
        let p2 = mk(1);
        let h1 = sim.spawn(async move { p1.transfer(Bytes::new(1_250_000), Bytes::ZERO).await });
        let h2 = sim.spawn(async move { p2.transfer(Bytes::new(1_250_000), Bytes::ZERO).await });
        sim.block_on(async move { simnet::sync::join2(h1, h2).await });
        // Two 1 ms flows into one port take ~2 ms, not 1 ms.
        assert!(
            sim.now() > SimTime::from_nanos(1_900_000),
            "got {}",
            sim.now()
        );
    }

    #[test]
    fn distinct_egress_ports_run_in_parallel() {
        let sim = Sim::new();
        let sw = CutThroughSwitch::new(&sim, SwitchConfig::xg700(), 4);
        let p1 = Pipeline::new(&sim, vec![sw.stage_to(0)], Bytes::new(1500));
        let p2 = Pipeline::new(&sim, vec![sw.stage_to(1)], Bytes::new(1500));
        let h1 = sim.spawn(async move { p1.transfer(Bytes::new(1_250_000), Bytes::ZERO).await });
        let h2 = sim.spawn(async move { p2.transfer(Bytes::new(1_250_000), Bytes::ZERO).await });
        sim.block_on(async move { simnet::sync::join2(h1, h2).await });
        assert!(
            sim.now() < SimTime::from_nanos(1_200_000),
            "got {}",
            sim.now()
        );
    }

    #[test]
    fn forwarding_latency_is_charged_once_per_hop() {
        let sim = Sim::new();
        let sw = CutThroughSwitch::new(&sim, SwitchConfig::xg700(), 2);
        let p = Pipeline::new(&sim, vec![sw.stage_to(1)], Bytes::new(1500));
        let s = sim.clone();
        sim.block_on(async move {
            p.transfer(Bytes::new(125), Bytes::ZERO).await;
            // 100 ns serialization + 450 ns forwarding.
            assert_eq!(s.now().as_nanos(), 550);
        });
    }
}
