//! A conventional (non-offloaded) Ethernet NIC with host-stack TCP — the
//! baseline the paper's whole framing measures against.
//!
//! The paper's pitch is that iWARP + TOE "fully eliminates host CPU
//! involvement in an Ethernet environment" and achieves "an unprecedented
//! latency for Ethernet". To quantify *unprecedented*, this module models
//! the thing being replaced: a dumb 10GbE NIC where the host CPU runs the
//! TCP/IP stack — per-segment protocol processing, kernel⇄user copies, and
//! interrupt handling — at 2007-era per-packet costs.

use hostmodel::cpu::Cpu;
use hostmodel::pcie::{PcieConfig, PciePort};
use simnet::{ByteRate, Bytes, FaultPlane, Pipe, Pipeline, Sim, SimDuration, Stage};

use crate::recovery::{transfer_with_recovery, TcpTuning};
use crate::switch::{CutThroughSwitch, SwitchConfig};

/// Host-stack TCP cost calibration (dual-Xeon 2.8 GHz era).
#[derive(Clone, Copy, Debug)]
pub struct HostTcpCalib {
    /// Host CPU cost to run the TCP/IP transmit path for one segment
    /// (header build, checksum, routing, qdisc).
    pub tx_per_segment: SimDuration,
    /// Host CPU cost of the receive path per segment (interrupt + softirq
    /// + TCP processing).
    pub rx_per_segment: SimDuration,
    /// Interrupt coalescing quantum: the NIC batches this many receive
    /// segments per interrupt at load (reduces per-segment cost for bulk).
    pub coalesce: u64,
    /// Extra latency of taking an interrupt and scheduling the stack.
    pub interrupt_latency: SimDuration,
    /// Socket-layer copy bandwidth (user ⇄ kernel).
    pub copy_bytes_per_sec: ByteRate,
    /// PCIe slot of the NIC.
    pub pcie: PcieConfig,
    /// TCP maximum segment payload.
    pub mss: Bytes,
    /// Per-segment wire overhead (Ethernet + IP + TCP).
    pub per_segment_overhead: Bytes,
}

impl Default for HostTcpCalib {
    fn default() -> Self {
        HostTcpCalib {
            tx_per_segment: SimDuration::from_nanos(2_500),
            rx_per_segment: SimDuration::from_nanos(3_000),
            coalesce: 4,
            interrupt_latency: SimDuration::from_micros(14),
            copy_bytes_per_sec: ByteRate::from_bytes_per_sec(2_000_000_000),
            pcie: PcieConfig::gen1_x8(),
            mss: Bytes::new(1448),
            per_segment_overhead: Bytes::new(98),
        }
    }
}

/// One host with a plain 10GbE NIC.
pub struct HostTcpNic {
    /// Node index.
    pub node: usize,
    /// Calibration.
    pub calib: HostTcpCalib,
    /// PCIe slot.
    pub pcie: PciePort,
    /// Host-to-switch wire.
    pub link_tx: Pipe,
    /// The sending CPU's TCP/IP stack as a serializing resource
    /// (per-segment transmit processing).
    pub tx_stack: Pipe,
    /// The receiving CPU's stack (per-segment receive processing,
    /// post-coalescing).
    pub rx_stack: Pipe,
}

/// A fabric of plain-Ethernet hosts over the same XG700-class switch the
/// iWARP tests use.
pub struct HostTcpFabric {
    sim: Sim,
    switch: CutThroughSwitch,
    nics: Vec<HostTcpNic>,
    /// Memoized `src → dst` pipelines; clones share the cached stage slice
    /// so a socket stream's back-to-back sends keep the simnet cut-through
    /// fast path warm instead of rebuilding six stages per message.
    paths: std::cell::RefCell<std::collections::BTreeMap<(usize, usize), Pipeline>>,
    /// Fault plane (disabled by default); when enabled, sends recover via
    /// the host stack's TCP retransmission timers.
    fault: std::cell::RefCell<FaultPlane>,
}

impl HostTcpFabric {
    /// Build a fabric of `nodes` hosts.
    pub fn new(sim: &Sim, nodes: usize) -> Self {
        Self::with_calib(sim, nodes, HostTcpCalib::default())
    }

    /// Build with explicit calibration.
    pub fn with_calib(sim: &Sim, nodes: usize, calib: HostTcpCalib) -> Self {
        assert!(nodes >= 2);
        let stack_pipe = |per_seg: SimDuration| {
            // A stack that takes `per_seg` per MSS-sized segment is a
            // "bandwidth" resource of mss/per_seg bytes per second.
            let bps = (calib.mss.get() as u128 * 1_000_000_000 / per_seg.as_nanos().max(1) as u128)
                as u64;
            move |sim: &Sim| {
                Pipe::new(
                    sim,
                    ByteRate::from_bytes_per_sec(bps.max(1)),
                    SimDuration::ZERO,
                )
            }
        };
        HostTcpFabric {
            sim: sim.clone(),
            switch: CutThroughSwitch::new(sim, SwitchConfig::xg700(), nodes),
            nics: (0..nodes)
                .map(|node| HostTcpNic {
                    node,
                    calib,
                    pcie: PciePort::new(sim, calib.pcie),
                    link_tx: Pipe::new(
                        sim,
                        SwitchConfig::xg700().port_bytes_per_sec,
                        SimDuration::ZERO,
                    ),
                    tx_stack: stack_pipe(calib.tx_per_segment)(sim),
                    rx_stack: stack_pipe(calib.rx_per_segment)(sim),
                })
                .collect(),
            paths: std::cell::RefCell::new(std::collections::BTreeMap::new()),
            fault: std::cell::RefCell::new(FaultPlane::disabled()),
        }
    }

    /// Install a fault plane (see [`simnet::fault`]). Sends judged by an
    /// enabled plane pay TCP recovery costs for every injected loss.
    pub fn set_fault_plane(&self, plane: FaultPlane) {
        // Key the transfer memo on the plane's configuration: outcomes
        // cached fault-free never replay under faults (see `simnet::memo`).
        self.sim.set_fault_fingerprint(plane.fingerprint());
        *self.fault.borrow_mut() = plane;
    }

    /// The full path `src → dst`: transmit stack, NIC DMA, wire, switch,
    /// receive DMA, then the interrupt-driven receive stack. Protocol
    /// processing stages run on the host CPUs — the defining difference
    /// from the offloaded fabrics. Built once per `(src, dst)` and cached.
    fn data_path(&self, src: usize, dst: usize) -> Pipeline {
        if let Some(p) = self.paths.borrow().get(&(src, dst)) {
            return p.clone();
        }
        let path = self.build_data_path(src, dst);
        self.paths.borrow_mut().insert((src, dst), path.clone());
        path
    }

    fn build_data_path(&self, src: usize, dst: usize) -> Pipeline {
        let s = &self.nics[src];
        let d = &self.nics[dst];
        let stages = vec![
            Stage::new(s.tx_stack.clone(), SimDuration::from_nanos(300)),
            Stage::new(s.pcie.to_device_pipe().clone(), s.calib.pcie.dma_latency),
            Stage::new(s.link_tx.clone(), SimDuration::from_nanos(100)),
            self.switch.stage_to(dst),
            Stage::new(
                d.pcie.to_host_pipe().clone(),
                SimDuration::from_nanos(d.calib.pcie.dma_latency.as_nanos() / 2),
            ),
            // Interrupt dispatch latency, then per-segment receive work.
            Stage::new(d.rx_stack.clone(), d.calib.interrupt_latency),
        ];
        Pipeline::new(&self.sim, stages, s.calib.mss)
    }

    /// Send `bytes` from `src` to `dst` with socket semantics: resolves
    /// when the receiving process holds the data in user space. The
    /// protocol and copy work is charged to the two processes' CPUs —
    /// which is exactly what the offloaded fabrics avoid.
    pub async fn send_msg(
        &self,
        src: usize,
        dst: usize,
        src_cpu: &Cpu,
        dst_cpu: &Cpu,
        bytes: Bytes,
    ) {
        let calib = &self.nics[src].calib;
        let nsegs = bytes.div_ceil(calib.mss).max(1);
        // Syscall + user→kernel copy on the sender.
        src_cpu.work(SimDuration::from_nanos(900)).await;
        src_cpu.work(bytes / calib.copy_bytes_per_sec).await;
        // Stack + wire + remote stack (the pipeline overlaps all phases at
        // segment granularity, as real streaming does). Under an enabled
        // fault plane, injected losses engage the software stack's
        // retransmission machinery; disabled, this is exactly
        // `Pipeline::transfer`.
        let plane = self.fault.borrow().clone();
        let stream = ((src as u64) << 32) | dst as u64;
        transfer_with_recovery(
            &self.sim,
            &plane,
            &self.data_path(src, dst),
            "ether",
            stream,
            bytes,
            calib.mss,
            calib.per_segment_overhead,
            &TcpTuning::host_stack(),
        )
        .await;
        // The stack stages above consumed real CPU time on both hosts;
        // account it (the pipeline pipes are not `Cpu` objects).
        src_cpu.account_busy(calib.tx_per_segment * nsegs);
        dst_cpu.account_busy(
            calib.rx_per_segment * nsegs + calib.interrupt_latency * nsegs.div_ceil(calib.coalesce),
        );
        // Kernel→user copy + syscall return on the receiver.
        dst_cpu.work(SimDuration::from_nanos(900)).await;
        dst_cpu.work(bytes / calib.copy_bytes_per_sec).await;
    }
}

/// Host-local halves of the host-TCP data path, for endpoint-to-shard
/// placement in sharded cluster runs ([`simnet::shard`]). Split from
/// [`HostTcpFabric::data_path`] at the switch hop: software TX stack, DMA
/// and wire serialization as `egress`; this host's switch egress port, DMA
/// and interrupt-driven RX stack as `ingress`; the XG700's cut-through
/// forwarding delay as the cross-shard `wire_latency`.
pub fn shard_host_path(sim: &Sim, calib: HostTcpCalib) -> simnet::shard::HostPath {
    shard_host_path_at(sim, 0, calib)
}

/// [`shard_host_path`] for an explicit host placement, matching the other
/// fabrics' node-indexed constructors. The software stack carries no
/// per-node device state — every call already builds private pipes — so
/// `node` here only documents the placement; it exists so the open-loop
/// workload engine can materialize a client/server pair with one uniform
/// signature across all four fabrics.
pub fn shard_host_path_at(sim: &Sim, _node: usize, calib: HostTcpCalib) -> simnet::shard::HostPath {
    // A stack that takes `per_seg` per MSS-sized segment is a "bandwidth"
    // resource of mss/per_seg bytes per second (same formula as
    // `HostTcpFabric::with_calib`).
    let stack_pipe = |per_seg: SimDuration| {
        let bps =
            (calib.mss.get() as u128 * 1_000_000_000 / per_seg.as_nanos().max(1) as u128) as u64;
        Pipe::new(
            sim,
            ByteRate::from_bytes_per_sec(bps.max(1)),
            SimDuration::ZERO,
        )
    };
    let pcie = PciePort::new(sim, calib.pcie);
    let cfg = SwitchConfig::xg700();
    let egress = Pipeline::new(
        sim,
        vec![
            Stage::new(
                stack_pipe(calib.tx_per_segment),
                SimDuration::from_nanos(300),
            ),
            Stage::new(pcie.to_device_pipe().clone(), calib.pcie.dma_latency),
            Stage::new(
                Pipe::new(sim, cfg.port_bytes_per_sec, SimDuration::ZERO),
                SimDuration::from_nanos(100),
            ),
        ],
        calib.mss,
    );
    let ingress = Pipeline::new(
        sim,
        vec![
            Stage::new(
                Pipe::new(sim, cfg.port_bytes_per_sec, SimDuration::ZERO),
                SimDuration::ZERO,
            ),
            Stage::new(
                pcie.to_host_pipe().clone(),
                SimDuration::from_nanos(calib.pcie.dma_latency.as_nanos() / 2),
            ),
            // Interrupt dispatch latency, then per-segment receive work.
            Stage::new(stack_pipe(calib.rx_per_segment), calib.interrupt_latency),
        ],
        calib.mss,
    );
    simnet::shard::HostPath {
        egress,
        ingress,
        wire_latency: cfg.forwarding_latency,
        overhead_bytes: calib.per_segment_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostmodel::cpu::CpuCosts;
    use simnet::sync::join2;

    fn pingpong_half_rtt(size: u64) -> f64 {
        let sim = Sim::new();
        let fab = std::rc::Rc::new(HostTcpFabric::new(&sim, 2));
        let cpu_a = Cpu::new(&sim, CpuCosts::default());
        let cpu_b = Cpu::new(&sim, CpuCosts::default());
        sim.block_on({
            let sim = sim.clone();
            async move {
                let iters = 20u64;
                let t0 = sim.now();
                for _ in 0..iters {
                    fab.send_msg(0, 1, &cpu_a, &cpu_b, Bytes::new(size)).await;
                    fab.send_msg(1, 0, &cpu_b, &cpu_a, Bytes::new(size)).await;
                }
                (sim.now() - t0).as_micros_f64() / (2.0 * iters as f64)
            }
        })
    }

    #[test]
    fn host_tcp_small_message_latency_is_tens_of_microseconds() {
        // The era's host TCP over 10GbE: ~20-50 µs ping-pong half-RTT.
        let t = pingpong_half_rtt(64);
        assert!(
            (15.0..50.0).contains(&t),
            "host TCP half-RTT {t:.1} µs — must be an order above iWARP's 9.78"
        );
    }

    #[test]
    fn host_tcp_bandwidth_is_cpu_bound_well_below_line_rate() {
        let sim = Sim::new();
        let fab = std::rc::Rc::new(HostTcpFabric::new(&sim, 2));
        let cpu_a = Cpu::new(&sim, CpuCosts::default());
        let cpu_b = Cpu::new(&sim, CpuCosts::default());
        let mbps = sim.block_on({
            let sim = sim.clone();
            let fab = std::rc::Rc::clone(&fab);
            async move {
                let n = 8u64 << 20;
                let t0 = sim.now();
                fab.send_msg(0, 1, &cpu_a, &cpu_b, Bytes::new(n)).await;
                n as f64 / (sim.now() - t0).as_secs_f64() / 1e6
            }
        });
        assert!(
            (300.0..800.0).contains(&mbps),
            "host TCP bulk {mbps:.0} MB/s — CPU-bound, far below the 1088 the TOE reaches"
        );
    }

    #[test]
    fn receiving_costs_significant_host_cpu_unlike_rdma() {
        let sim = Sim::new();
        let fab = std::rc::Rc::new(HostTcpFabric::new(&sim, 2));
        let cpu_a = Cpu::new(&sim, CpuCosts::default());
        let cpu_b = Cpu::new(&sim, CpuCosts::default());
        sim.block_on({
            let fab = std::rc::Rc::clone(&fab);
            let cpu_b2 = cpu_b.clone();
            async move {
                fab.send_msg(0, 1, &cpu_a, &cpu_b2, Bytes::new(1 << 20))
                    .await;
            }
        });
        // Receiving 1 MB burns >1 ms of CPU (copies + per-segment work);
        // the RNIC model burns <1 µs for the same transfer.
        assert!(
            cpu_b.busy_time().as_micros_f64() > 1_000.0,
            "host TCP rx CPU busy {} must dwarf RDMA's",
            cpu_b.busy_time()
        );
    }

    #[test]
    fn duplex_exchange_works() {
        let sim = Sim::new();
        let fab = std::rc::Rc::new(HostTcpFabric::new(&sim, 2));
        let cpu_a = Cpu::new(&sim, CpuCosts::default());
        let cpu_b = Cpu::new(&sim, CpuCosts::default());
        sim.block_on({
            let fab2 = std::rc::Rc::clone(&fab);
            async move {
                let a = fab.send_msg(0, 1, &cpu_a, &cpu_b, Bytes::new(4096));
                let b = fab2.send_msg(1, 0, &cpu_b, &cpu_a, Bytes::new(4096));
                join2(a, b).await;
            }
        });
        assert!(sim.now().as_micros_f64() > 0.0);
    }
}
