//! Table-driven CRC-32 (IEEE 802.3, polynomial 0x04C11DB7 reflected) and
//! CRC-32C (Castagnoli, 0x1EDC6F41 reflected — the checksum iWARP's MPA
//! layer puts on every FPDU).

/// Build the 256-entry lookup table for a reflected polynomial.
const fn make_table(poly: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ poly
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Reflected IEEE 802.3 polynomial (Ethernet FCS).
const CRC32_TABLE: [u32; 256] = make_table(0xEDB8_8320);
/// Reflected Castagnoli polynomial (iSCSI/iWARP).
const CRC32C_TABLE: [u32; 256] = make_table(0x82F6_3B78);

#[inline]
fn crc_with(table: &[u32; 256], data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Ethernet frame-check-sequence CRC-32.
pub fn crc32(data: &[u8]) -> u32 {
    crc_with(&CRC32_TABLE, data)
}

/// CRC-32C (Castagnoli), as required by the MPA specification.
pub fn crc32c(data: &[u8]) -> u32 {
    crc_with(&CRC32C_TABLE, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 appendix / canonical check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // 32 bytes of zeros (RFC 3720 test pattern).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let orig = crc32c(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32c(&data), orig);
    }
}
