//! TCP loss recovery over a [`Pipeline`]: RTO with exponential backoff plus
//! fast retransmit on triple duplicate ACKs.
//!
//! Both TCP-based fabrics share this engine — the host-stack baseline
//! ([`crate::hostnic`]) and the iWARP RNIC (whose TOE runs the same
//! algorithms in hardware, just with tighter timers). The transfer is judged
//! segment-by-segment against a [`FaultPlane`]; contiguous delivered runs
//! are streamed through the pipeline in one reservation (preserving the
//! cut-through overlap a healthy stream enjoys), and each lost or corrupted
//! segment pays the protocol's real recovery cost:
//!
//! * **Fast retransmit** — a first loss with at least [`DUP_ACK_THRESHOLD`]
//!   segments still to follow is detected by duplicate ACKs from the
//!   out-of-order arrivals behind it, after roughly one round trip
//!   ([`TcpTuning::fast_retx_delay`]).
//! * **RTO** — a tail loss (nothing behind it to clock dup-ACKs out) or a
//!   lost retransmission waits out the retransmission timer, doubling it on
//!   each consecutive attempt up to `rto << max_backoff_exp`.
//!
//! With the plane disabled the engine is one branch and a tail call to
//! [`Pipeline::transfer`] — bit-identical to the pre-fault code path.

use simnet::{Bytes, FaultDecision, FaultPlane, Pipeline, Sim, SimDuration};

/// Duplicate-ACK count that triggers fast retransmit (RFC 5681's three).
pub const DUP_ACK_THRESHOLD: u64 = 3;

/// Send-side phases of one recovering transfer. This is the canonical
/// machine: [`fsm_next`] is the single in-crate statement of which
/// transitions exist, and `simlint --dataflow` statically diffs it against
/// `simcheck::ether::TCP_FSM_TABLE` (rule `fsm-drift`) so the model and
/// the conformance-side restatement cannot disagree silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpSendPhase {
    /// Healthy: contiguous segments stream through the pipeline.
    Streaming,
    /// A loss with enough trailing segments to clock out duplicate ACKs;
    /// retransmission fires after ~one RTT.
    FastRetx,
    /// Tail loss or lost retransmission: waiting out the (backed-off)
    /// retransmission timer.
    RtoWait,
    /// Last byte cleared the pipeline.
    Done,
}

/// Events driving [`TcpSendPhase`] through [`fsm_next`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpSendEvent {
    /// A segment was judged deliverable.
    SegmentDelivered,
    /// A segment was delayed in flight (queueing, no retransmit).
    SegmentDelayed,
    /// A loss detected by duplicate ACKs (trailing segments exist).
    LossFastRetx,
    /// A tail loss: nothing behind it, only the timer notices.
    LossTail,
    /// A retransmission reached the receiver.
    RetxDelivered,
    /// A retransmission was itself lost.
    RetxLost,
    /// The final segment cleared the pipeline.
    Finish,
}

impl TcpSendPhase {
    /// Variant spelling as it appears in `simcheck::ether::TCP_FSM_TABLE`
    /// rows.
    pub fn table_name(self) -> &'static str {
        match self {
            TcpSendPhase::Streaming => "Streaming",
            TcpSendPhase::FastRetx => "FastRetx",
            TcpSendPhase::RtoWait => "RtoWait",
            TcpSendPhase::Done => "Done",
        }
    }
}

impl TcpSendEvent {
    /// Event spelling as it appears in `simcheck::ether::TCP_FSM_TABLE`
    /// rows.
    pub fn table_name(self) -> &'static str {
        match self {
            TcpSendEvent::SegmentDelivered => "SegmentDelivered",
            TcpSendEvent::SegmentDelayed => "SegmentDelayed",
            TcpSendEvent::LossFastRetx => "LossFastRetx",
            TcpSendEvent::LossTail => "LossTail",
            TcpSendEvent::RetxDelivered => "RetxDelivered",
            TcpSendEvent::RetxLost => "RetxLost",
            TcpSendEvent::Finish => "Finish",
        }
    }
}

/// Canonical recovery transition function: `None` means the event cannot
/// occur in `from` (e.g. a fresh loss while already waiting on the timer —
/// the engine handles one hole at a time).
pub fn fsm_next(from: TcpSendPhase, ev: TcpSendEvent) -> Option<TcpSendPhase> {
    match (from, ev) {
        (TcpSendPhase::Streaming, TcpSendEvent::SegmentDelivered) => Some(TcpSendPhase::Streaming),
        (TcpSendPhase::Streaming, TcpSendEvent::SegmentDelayed) => Some(TcpSendPhase::Streaming),
        (TcpSendPhase::Streaming, TcpSendEvent::LossFastRetx) => Some(TcpSendPhase::FastRetx),
        (TcpSendPhase::Streaming, TcpSendEvent::LossTail) => Some(TcpSendPhase::RtoWait),
        (TcpSendPhase::FastRetx, TcpSendEvent::RetxDelivered) => Some(TcpSendPhase::Streaming),
        (TcpSendPhase::FastRetx, TcpSendEvent::RetxLost) => Some(TcpSendPhase::RtoWait),
        (TcpSendPhase::RtoWait, TcpSendEvent::RetxDelivered) => Some(TcpSendPhase::Streaming),
        (TcpSendPhase::RtoWait, TcpSendEvent::RetxLost) => Some(TcpSendPhase::RtoWait),
        (TcpSendPhase::Streaming, TcpSendEvent::Finish) => Some(TcpSendPhase::Done),
        _ => None,
    }
}

/// Advance a tracked phase, debug-asserting the move is one the machine
/// admits. Pure bookkeeping: no simulated time is touched, so enabling the
/// tracking cannot perturb transfer timing.
fn fsm_step(phase: &mut TcpSendPhase, ev: TcpSendEvent) {
    match fsm_next(*phase, ev) {
        Some(next) => *phase = next,
        None => debug_assert!(false, "illegal recovery transition {phase:?} --{ev:?}"),
    }
}

/// Recovery-timer calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Initial retransmission timeout. Real stacks clamp this to hundreds
    /// of milliseconds; the simulated fabrics scale it to their
    /// microsecond RTTs so recovery dynamics (not absolute wall time)
    /// match the protocol.
    pub rto: SimDuration,
    /// Consecutive-backoff ceiling: the timeout doubles per attempt up to
    /// `rto << max_backoff_exp`.
    pub max_backoff_exp: u32,
    /// Time from a loss to the third duplicate ACK arriving back — about
    /// one round trip at the fabric's latency.
    pub fast_retx_delay: SimDuration,
    /// Retransmission attempts per segment before the model stops
    /// re-judging and forces the segment through (keeps pathological
    /// configured rates terminating; real stacks reset the connection).
    pub max_retries: u32,
}

impl TcpTuning {
    /// Host-software-stack timers (interrupt-driven, kernel granularity).
    pub fn host_stack() -> Self {
        TcpTuning {
            rto: SimDuration::from_micros(200),
            max_backoff_exp: 6,
            fast_retx_delay: SimDuration::from_micros(40),
            max_retries: 16,
        }
    }

    /// TCP-offload-engine timers (hardware retransmit state machine).
    pub fn offload() -> Self {
        TcpTuning {
            rto: SimDuration::from_micros(60),
            max_backoff_exp: 6,
            fast_retx_delay: SimDuration::from_micros(12),
            max_retries: 16,
        }
    }
}

impl Default for TcpTuning {
    fn default() -> Self {
        TcpTuning::host_stack()
    }
}

/// What one recovering transfer cost, for callers that report per-transfer
/// accounting (the same quantities are accumulated globally in
/// [`simnet::SimStats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Faults this transfer absorbed (drops + corruptions + delays).
    pub faults: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Retransmission-timer expiries.
    pub rto_fires: u64,
}

/// Stream `bytes` through `path` in `mss`-sized segments with TCP loss
/// recovery against `plane`. Resolves when the last byte clears the
/// pipeline (exactly like [`Pipeline::transfer`], which it becomes when the
/// plane is disabled). `stream` keys the plane's per-connection decision
/// counter and tags conformance reports; `fabric` is the simcheck fabric
/// tag of the caller.
#[allow(clippy::too_many_arguments)]
pub async fn transfer_with_recovery(
    sim: &Sim,
    plane: &FaultPlane,
    path: &Pipeline,
    fabric: &'static str,
    stream: u64,
    bytes: Bytes,
    mss: Bytes,
    per_segment_overhead: Bytes,
    tuning: &TcpTuning,
) -> RecoveryStats {
    let _ = fabric;
    if !plane.enabled() {
        path.transfer(bytes, per_segment_overhead).await;
        return RecoveryStats::default();
    }
    let mss = mss.max(Bytes::new(1));
    let nsegs = bytes.div_ceil(mss).max(1);
    // Byte length of the segment run [lo, hi): all full MSS except a
    // possibly short tail.
    let run_bytes = |lo: u64, hi: u64| -> Bytes {
        if hi == nsegs {
            bytes - mss * lo
        } else {
            mss * (hi - lo)
        }
    };
    let mut stats = RecoveryStats::default();
    #[cfg(feature = "simcheck")]
    let mut oracle = simcheck::fault::DeliveryOracle::new(fabric, stream, nsegs);
    #[cfg(feature = "simcheck")]
    let mut observe_run = |lo: u64, hi: u64, now_ns: u64| {
        for idx in lo..hi {
            let _ = oracle.on_deliver(idx, Some(now_ns));
        }
    };

    let mut phase = TcpSendPhase::Streaming;
    let mut run_start = 0u64;
    let mut i = 0u64;
    while i < nsegs {
        match plane.judge(sim, stream) {
            FaultDecision::Deliver => {
                fsm_step(&mut phase, TcpSendEvent::SegmentDelivered);
                i += 1;
            }
            FaultDecision::Delay => {
                fsm_step(&mut phase, TcpSendEvent::SegmentDelayed);
                stats.faults += 1;
                // Everything up to and including the delayed segment is on
                // the wire; the delay adds queueing latency behind it.
                path.transfer(run_bytes(run_start, i + 1), per_segment_overhead)
                    .await;
                sim.sleep(plane.delay()).await;
                #[cfg(feature = "simcheck")]
                observe_run(run_start, i + 1, sim.now().as_nanos());
                i += 1;
                run_start = i;
            }
            FaultDecision::Drop | FaultDecision::Corrupt => {
                stats.faults += 1;
                // The loss is discovered only after the preceding run (and,
                // for fast retransmit, the segments behind it) reached the
                // receiver: stream out what was sent so far first.
                if run_start < i {
                    path.transfer(run_bytes(run_start, i), per_segment_overhead)
                        .await;
                    #[cfg(feature = "simcheck")]
                    observe_run(run_start, i, sim.now().as_nanos());
                }
                let mut attempt = 0u32;
                loop {
                    let trailing = nsegs - 1 - i;
                    if attempt == 0 && trailing >= DUP_ACK_THRESHOLD {
                        // Out-of-order arrivals behind the hole clock out
                        // duplicate ACKs; the third triggers retransmission
                        // about one RTT after the loss.
                        fsm_step(&mut phase, TcpSendEvent::LossFastRetx);
                        sim.sleep(tuning.fast_retx_delay).await;
                    } else {
                        // Tail loss or lost retransmission: wait out the
                        // timer, doubling per consecutive attempt.
                        if attempt == 0 {
                            fsm_step(&mut phase, TcpSendEvent::LossTail);
                        }
                        let exp = attempt.min(tuning.max_backoff_exp);
                        sim.sleep(tuning.rto * (1u64 << exp)).await;
                        sim.note_rto_fire();
                        stats.rto_fires += 1;
                    }
                    sim.note_retransmits(1);
                    stats.retransmits += 1;
                    attempt += 1;
                    let delivered = attempt > tuning.max_retries
                        || matches!(
                            plane.judge(sim, stream),
                            FaultDecision::Deliver | FaultDecision::Delay
                        );
                    if delivered {
                        fsm_step(&mut phase, TcpSendEvent::RetxDelivered);
                        path.transfer(run_bytes(i, i + 1), per_segment_overhead)
                            .await;
                        #[cfg(feature = "simcheck")]
                        observe_run(i, i + 1, sim.now().as_nanos());
                        break;
                    }
                    fsm_step(&mut phase, TcpSendEvent::RetxLost);
                    stats.faults += 1;
                }
                i += 1;
                run_start = i;
            }
        }
    }
    if run_start < nsegs {
        path.transfer(run_bytes(run_start, nsegs), per_segment_overhead)
            .await;
        #[cfg(feature = "simcheck")]
        observe_run(run_start, nsegs, sim.now().as_nanos());
    }
    fsm_step(&mut phase, TcpSendEvent::Finish);
    debug_assert_eq!(phase, TcpSendPhase::Done, "transfer must end in Done");
    #[cfg(feature = "simcheck")]
    {
        let now = Some(sim.now().as_nanos());
        let _ = oracle.finish(now);
        // Selective repeat: every drop/corrupt costs at most one
        // retransmission (a lost retransmission is itself a new fault).
        let _ = simcheck::fault::check_retransmit_bound(
            fabric,
            stream,
            stats.faults,
            stats.retransmits,
            1,
            now,
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ByteRate, FaultConfig, Pipe, Stage};

    fn test_path(sim: &Sim) -> Pipeline {
        let stages = vec![
            Stage::new(
                Pipe::new(sim, ByteRate::from_gbps(10), SimDuration::ZERO),
                SimDuration::from_nanos(300),
            ),
            Stage::new(
                Pipe::new(sim, ByteRate::from_gbps(10), SimDuration::ZERO),
                SimDuration::from_nanos(500),
            ),
        ];
        Pipeline::new(sim, stages, Bytes::new(1448))
    }

    fn run(plane: FaultPlane, bytes: u64) -> (f64, RecoveryStats, simnet::SimStats) {
        let sim = Sim::new();
        let path = test_path(&sim);
        let stats = sim.block_on({
            let sim2 = sim.clone();
            async move {
                transfer_with_recovery(
                    &sim2,
                    &plane,
                    &path,
                    "ether",
                    7,
                    Bytes::new(bytes),
                    Bytes::new(1448),
                    Bytes::new(98),
                    &TcpTuning::host_stack(),
                )
                .await
            }
        });
        (sim.now().as_micros_f64(), stats, sim.stats())
    }

    /// The crate machine and the conformance table must agree on every
    /// (phase, event) pair — the runtime complement of the static
    /// `fsm-drift` diff in `simlint --dataflow`.
    #[cfg(feature = "simcheck")]
    #[test]
    fn recovery_machine_matches_simcheck_table_exhaustively() {
        use TcpSendEvent::{
            Finish, LossFastRetx, LossTail, RetxDelivered, RetxLost, SegmentDelayed,
            SegmentDelivered,
        };
        use TcpSendPhase::{Done, FastRetx, RtoWait, Streaming};
        for from in [Streaming, FastRetx, RtoWait, Done] {
            for ev in [
                SegmentDelivered,
                SegmentDelayed,
                LossFastRetx,
                LossTail,
                RetxDelivered,
                RetxLost,
                Finish,
            ] {
                let machine = fsm_next(from, ev).map(TcpSendPhase::table_name);
                let table = simcheck::fsm_lookup(
                    simcheck::ether::TCP_FSM_TABLE,
                    from.table_name(),
                    ev.table_name(),
                );
                assert_eq!(machine, table, "{from:?} --{ev:?}--> disagrees");
            }
        }
    }

    #[test]
    fn disabled_plane_is_bit_identical_to_plain_transfer() {
        let sim = Sim::new();
        let path = test_path(&sim);
        sim.block_on(async move {
            path.transfer(Bytes::new(1 << 20), Bytes::new(98)).await;
        });
        let baseline = sim.now().as_nanos();
        let (t, stats, sstats) = run(FaultPlane::disabled(), 1 << 20);
        assert_eq!((t * 1000.0).round() as u64, baseline);
        assert_eq!(stats, RecoveryStats::default());
        assert_eq!(sstats.faults_injected, 0);
        assert_eq!(sstats.retransmits, 0);
        assert_eq!(sstats.rto_fires, 0);
    }

    #[test]
    fn loss_slows_the_transfer_and_counts_recovery_work() {
        let (t_clean, _, _) = run(FaultPlane::disabled(), 1 << 20);
        // 1% loss over ~725 segments: expect several faults.
        let plane = FaultPlane::new(FaultConfig::loss(10_000, 99));
        let (t_lossy, stats, sstats) = run(plane, 1 << 20);
        assert!(stats.faults > 0, "1% loss over 725 segments injected none");
        assert_eq!(stats.retransmits, stats.faults - count_delays(&stats));
        assert!(
            t_lossy > t_clean,
            "recovery must cost time: {t_lossy:.1} vs {t_clean:.1} µs"
        );
        assert_eq!(sstats.faults_injected, stats.faults);
        assert_eq!(sstats.retransmits, stats.retransmits);
        assert_eq!(sstats.rto_fires, stats.rto_fires);
    }

    // Pure-loss configs inject no delays, so every fault is a retransmit.
    fn count_delays(_stats: &RecoveryStats) -> u64 {
        0
    }

    #[test]
    fn tail_loss_pays_an_rto_and_fast_retx_does_not() {
        // Deterministically find a seed whose first fault lands in the
        // fast-retransmit region (plenty of trailing segments): with 20%
        // loss over 100 segments any seed works; verify both paths appear
        // across a few seeds.
        let mut saw_rto = false;
        let mut saw_fast = false;
        for seed in 0..8u64 {
            let plane = FaultPlane::new(FaultConfig::loss(200_000, seed));
            let (_, stats, _) = run(plane, 100 * 1448);
            if stats.retransmits > stats.rto_fires {
                saw_fast = true;
            }
            if stats.rto_fires > 0 {
                saw_rto = true;
            }
        }
        assert!(saw_fast, "no seed exercised fast retransmit");
        assert!(saw_rto, "no seed exercised the RTO path");
    }

    #[test]
    fn recovery_is_deterministic() {
        let mk = || FaultPlane::new(FaultConfig::loss(10_000, 4242));
        let (t1, s1, _) = run(mk(), 1 << 20);
        let (t2, s2, _) = run(mk(), 1 << 20);
        assert!((t1 - t2).abs() < f64::EPSILON);
        assert_eq!(s1, s2);
    }

    #[test]
    fn pathological_rates_still_terminate() {
        // 100% drop: every segment is forced through after max_retries.
        let plane = FaultPlane::new(FaultConfig::loss(1_000_000, 1));
        let (_, stats, _) = run(plane, 4 * 1448);
        assert_eq!(stats.retransmits, 4 * 17); // max_retries + 1 per segment
        assert!(stats.rto_fires > 0);
    }

    #[test]
    fn delay_faults_delay_without_retransmitting() {
        let sim = Sim::new();
        let path = test_path(&sim);
        let plane = FaultPlane::new(FaultConfig {
            drop_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 1_000_000,
            delay: SimDuration::from_micros(50),
            seed: 3,
        });
        let stats = sim.block_on({
            let sim2 = sim.clone();
            async move {
                transfer_with_recovery(
                    &sim2,
                    &plane,
                    &path,
                    "ether",
                    1,
                    Bytes::new(2 * 1448),
                    Bytes::new(1448),
                    Bytes::new(98),
                    &TcpTuning::host_stack(),
                )
                .await
            }
        });
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.rto_fires, 0);
        assert_eq!(stats.faults, 2);
        assert!(sim.now().as_micros_f64() >= 100.0, "two 50 µs delays");
    }
}
