//! # etherstack — Ethernet, IPv4 and TCP substrate
//!
//! The iWARP stack in the reproduced study rides on ordinary TCP/IP over
//! 10-Gigabit Ethernet (offloaded to the NIC's TOE), and the Myri-10G NIC
//! speaks Ethernet framing in its MXoE mode. This crate provides that
//! substrate:
//!
//! * [`frame`] — Ethernet II framing with real encode/decode and the wire
//!   overhead constants (preamble, FCS, inter-frame gap) that determine
//!   achievable payload bandwidth on a 10 Gb/s line.
//! * [`ipv4`] — IPv4 header codec with the Internet checksum.
//! * [`tcp`] — TCP header codec and a sequence-number-accurate segmenter /
//!   reassembler (the part of TCP that matters on a lossless fabric).
//! * [`crc`] — CRC-32 (Ethernet FCS) and CRC-32C (iWARP MPA) from scratch.
//! * [`switch`] — a cut-through Ethernet switch timing model.
//! * [`recovery`] — TCP loss recovery (RTO + fast retransmit) over a
//!   `simnet` pipeline, shared by the host-stack baseline and the iWARP
//!   TOE under fault injection.
//!
//! Timing (who waits how long) is handled by `simnet` pipes in the NIC
//! models; this crate's codecs are pure logic, which makes them directly
//! property-testable.

#![forbid(unsafe_code)]

pub mod crc;
pub mod frame;
pub mod hostnic;
pub mod ipv4;
pub mod recovery;
pub mod switch;
pub mod tcp;

pub use frame::{EthernetHeader, ETHERTYPE_IPV4, ETH_HEADER_LEN, ETH_MTU, ETH_WIRE_OVERHEAD};
pub use hostnic::{shard_host_path, shard_host_path_at, HostTcpCalib, HostTcpFabric};
pub use ipv4::Ipv4Header;
pub use recovery::{transfer_with_recovery, RecoveryStats, TcpTuning};
pub use switch::{CutThroughSwitch, SwitchConfig};
pub use tcp::{TcpHeader, TcpReassembler, TcpSegmenter, TCP_MSS};
