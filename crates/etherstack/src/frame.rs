//! Ethernet II framing: header codec and wire-overhead accounting.

/// Length of an Ethernet II header: dst(6) + src(6) + ethertype(2).
pub const ETH_HEADER_LEN: usize = 14;
/// Frame check sequence length.
pub const ETH_FCS_LEN: usize = 4;
/// Preamble (7) + start-of-frame delimiter (1).
pub const ETH_PREAMBLE_LEN: usize = 8;
/// Minimum inter-frame gap in byte times.
pub const ETH_IFG_LEN: usize = 12;
/// Total per-frame wire overhead beyond the payload carried above L2:
/// header + FCS + preamble + IFG = 38 bytes. This is what separates the
/// 1250 MB/s line rate from the ~1.2 GB/s maximum IP payload rate.
pub const ETH_WIRE_OVERHEAD: u64 =
    (ETH_HEADER_LEN + ETH_FCS_LEN + ETH_PREAMBLE_LEN + ETH_IFG_LEN) as u64;
/// Standard Ethernet MTU (the CX4 deployments in the study ran 1500).
pub const ETH_MTU: u64 = 1500;
/// Ethertype for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Deterministic per-node test address.
    pub fn for_node(n: u8) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, n])
    }
}

/// An Ethernet II header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Serialize into 14 bytes.
    pub fn encode(&self) -> [u8; ETH_HEADER_LEN] {
        let mut out = [0u8; ETH_HEADER_LEN];
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
        out
    }

    /// Parse from bytes; `None` if too short.
    pub fn decode(data: &[u8]) -> Option<EthernetHeader> {
        if data.len() < ETH_HEADER_LEN {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        Some(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([data[12], data[13]]),
        })
    }
}

/// Bytes occupied on the wire by a frame carrying `l2_payload` bytes
/// (header through FCS plus preamble and IFG; enforces the 64-byte minimum
/// frame size).
pub fn wire_bytes(l2_payload: u64) -> u64 {
    let frame = (l2_payload + ETH_HEADER_LEN as u64 + ETH_FCS_LEN as u64).max(64);
    let wire = frame + (ETH_PREAMBLE_LEN + ETH_IFG_LEN) as u64;
    // Conformance oracle (rule `ether.frame-accounting`): cross-check that
    // the accounting covers header + FCS (CRC) + min-frame pad + preamble +
    // IFG against simcheck's independent restatement.
    #[cfg(feature = "simcheck")]
    let _ = simcheck::ether::check_wire_accounting(l2_payload, wire, None);
    wire
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = EthernetHeader {
            dst: MacAddr::for_node(2),
            src: MacAddr::for_node(1),
            ethertype: ETHERTYPE_IPV4,
        };
        assert_eq!(EthernetHeader::decode(&h.encode()), Some(h));
    }

    #[test]
    fn decode_rejects_short_input() {
        assert_eq!(EthernetHeader::decode(&[0u8; 13]), None);
    }

    #[test]
    fn wire_overhead_is_38_bytes() {
        assert_eq!(ETH_WIRE_OVERHEAD, 38);
        assert_eq!(wire_bytes(1500), 1538);
    }

    #[test]
    fn minimum_frame_is_enforced() {
        // A 1-byte payload still occupies 64 + 20 byte times.
        assert_eq!(wire_bytes(1), 84);
        // 46 bytes payload exactly fills the minimum.
        assert_eq!(wire_bytes(46), 84);
        assert_eq!(wire_bytes(47), 85);
    }

    #[test]
    fn full_size_frame_efficiency_matches_line_rate_math() {
        // 1460 TCP payload / 1538 wire bytes = 94.9% of line rate; with
        // 10GbE at 1250 MB/s that is ~1186 MB/s of TCP payload.
        let eff = 1460.0 / wire_bytes(1500) as f64;
        assert!((eff - 0.949).abs() < 0.001);
    }
}
