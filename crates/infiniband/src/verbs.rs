//! IB verbs — the QP/CQ/MR user interface to the HCA.
//!
//! Mirrors the Mellanox VAPI semantics the paper benchmarks through:
//! reliable-connected QPs, RDMA Write / Send work requests, completion
//! queues, and lkey/rkey memory registration.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use hostmodel::cpu::Cpu;
use hostmodel::mem::{MemKey, VirtAddr};
use hostmodel::nic::{Cqe, CqeOpcode, CqeStatus};
use simnet::sync::{mpsc, FifoGate, Notify, Receiver, Sender};
use simnet::{Bytes, FaultPlane, Pipeline, Sim};

use crate::hca::{HcaDevice, IbFabric};
use crate::recovery::{transfer_go_back_n, IbTuning};

/// Lifecycle phases of a reliable-connected QP, as the connect handshake
/// walks them. This is the canonical machine: [`fsm_next`] is the single
/// in-crate statement of which transitions exist, and `simlint --dataflow`
/// statically diffs it against `simcheck::ib::QP_FSM_TABLE` (rule
/// `fsm-drift`) so the model and the conformance oracle cannot disagree
/// silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpPhase {
    /// Freshly created, no transport state.
    Reset,
    /// Port/pkey assigned; receives may be posted.
    Init,
    /// Ready to receive: remote QPN and path installed.
    Rtr,
    /// Ready to send: timeouts and retry budget armed.
    Rts,
    /// Fatal transport error; only a tear-down leaves this state.
    Error,
}

/// Events driving [`QpPhase`] through [`fsm_next`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpEvent {
    /// One rung of the modify-QP bring-up ladder.
    BringUp,
    /// Unrecoverable transport error.
    Fatal,
    /// Modify-QP back to RESET.
    TearDown,
}

impl QpPhase {
    /// Variant spelling as it appears in `simcheck::ib::QP_FSM_TABLE` rows.
    pub fn table_name(self) -> &'static str {
        match self {
            QpPhase::Reset => "Reset",
            QpPhase::Init => "Init",
            QpPhase::Rtr => "Rtr",
            QpPhase::Rts => "Rts",
            QpPhase::Error => "Error",
        }
    }

    /// The oracle-side state mirroring this phase.
    #[cfg(feature = "simcheck")]
    fn oracle_state(self) -> simcheck::ib::QpState {
        match self {
            QpPhase::Reset => simcheck::ib::QpState::Reset,
            QpPhase::Init => simcheck::ib::QpState::Init,
            QpPhase::Rtr => simcheck::ib::QpState::Rtr,
            QpPhase::Rts => simcheck::ib::QpState::Rts,
            QpPhase::Error => simcheck::ib::QpState::Error,
        }
    }
}

impl QpEvent {
    /// Event spelling as it appears in `simcheck::ib::QP_FSM_TABLE` rows.
    pub fn table_name(self) -> &'static str {
        match self {
            QpEvent::BringUp => "BringUp",
            QpEvent::Fatal => "Fatal",
            QpEvent::TearDown => "TearDown",
        }
    }
}

/// Canonical QP transition function: `None` means the event is illegal in
/// `from`. [`connect`] drives the bring-up ladder through this function
/// rather than a hardcoded state list.
pub fn fsm_next(from: QpPhase, ev: QpEvent) -> Option<QpPhase> {
    match (from, ev) {
        (QpPhase::Reset, QpEvent::BringUp) => Some(QpPhase::Init),
        (QpPhase::Init, QpEvent::BringUp) => Some(QpPhase::Rtr),
        (QpPhase::Rtr, QpEvent::BringUp) => Some(QpPhase::Rts),
        (_, QpEvent::Fatal) => Some(QpPhase::Error),
        (_, QpEvent::TearDown) => Some(QpPhase::Reset),
        _ => None,
    }
}

/// A work request accepted by [`IbQp::post_send_wr`].
#[derive(Clone, Debug)]
pub enum IbWorkRequest {
    /// One-sided write to remote `(rkey, addr)`.
    RdmaWrite {
        /// Completion correlator.
        wr_id: u64,
        /// Bytes to write.
        len: u64,
        /// Real payload (tests) or `None` (timing-only benchmarks).
        payload: Option<Vec<u8>>,
        /// Remote key.
        rkey: MemKey,
        /// Remote destination address.
        remote_addr: VirtAddr,
    },
    /// Two-sided send consuming a posted receive at the peer.
    Send {
        /// Completion correlator.
        wr_id: u64,
        /// Bytes to send.
        len: u64,
        /// Real payload or `None`.
        payload: Option<Vec<u8>>,
    },
}

#[derive(Clone, Copy)]
struct PostedRecv {
    wr_id: u64,
    addr: VirtAddr,
    len: u64,
}

struct QpEndpoint {
    /// In-order delivery gate (the RC-QP ordering guarantee).
    order: FifoGate,
    rq: RefCell<VecDeque<PostedRecv>>,
    /// RC requires a posted receive for every send; a send that arrives
    /// early waits here (in real hardware an RNR NAK retries — the timing
    /// effect at microbenchmark scale is the same wait).
    unmatched: RefCell<VecDeque<(u64, Option<Vec<u8>>)>>,
    cq_tx: Sender<Cqe>,
    placement: Notify,
}

/// One side of an IB reliable-connected queue pair.
pub struct IbQp {
    sim: Sim,
    cpu: Cpu,
    /// QP number (context-cache key on the local HCA).
    pub qpn: u32,
    /// The peer QP's number (context-cache key the *remote* HCA touches
    /// when our messages arrive).
    pub peer_qpn: u32,
    dev: Rc<HcaDevice>,
    peer_dev: Rc<HcaDevice>,
    tx_path: Pipeline,
    local: Rc<QpEndpoint>,
    remote: Rc<QpEndpoint>,
    cq_rx: RefCell<Receiver<Cqe>>,
    pkt_overhead: Bytes,
    /// Fault plane captured from the fabric at connect time.
    fault: FaultPlane,
    /// Fault-plane stream key for this QP's requester direction.
    conn: u64,
    /// Conformance oracle: QP state-machine legality (rule `ib.qp-state`).
    #[cfg(feature = "simcheck")]
    state_check: RefCell<simcheck::ib::QpStateOracle>,
    /// Conformance oracle: send-queue completions arrive in post order
    /// (rule `ib.cq-order`).
    #[cfg(feature = "simcheck")]
    cq_check: Rc<RefCell<simcheck::ib::CqOrderOracle>>,
}

/// Establish a connected QP pair between nodes `a` and `b`, charging each
/// side's CPU for the QP state transitions.
pub async fn connect(fab: &IbFabric, a: usize, b: usize, cpu_a: &Cpu, cpu_b: &Cpu) -> (IbQp, IbQp) {
    let dev_a = fab.device(a);
    let dev_b = fab.device(b);
    let path_ab = fab.data_path(a, b);
    let path_ba = fab.data_path(b, a);
    let ovh = fab.per_packet_overhead();
    let qpn_a = fab.alloc_qpn();
    let qpn_b = fab.alloc_qpn();

    cpu_a.work(dev_a.calib.connect_cpu).await;
    path_ab.transfer(Bytes::new(64), ovh).await;
    cpu_b.work(dev_b.calib.connect_cpu).await;
    path_ba.transfer(Bytes::new(64), ovh).await;

    let (cq_tx_a, cq_rx_a) = mpsc();
    let (cq_tx_b, cq_rx_b) = mpsc();
    let mk_ep = |cq_tx| {
        Rc::new(QpEndpoint {
            order: FifoGate::new(),
            rq: RefCell::new(VecDeque::new()),
            unmatched: RefCell::new(VecDeque::new()),
            cq_tx,
            placement: Notify::new(),
        })
    };
    let ep_a = mk_ep(cq_tx_a);
    let ep_b = mk_ep(cq_tx_b);
    let fault = fab.fault_plane();
    // Conformance oracle: walk each QP through the canonical RC bring-up
    // (RESET → INIT → RTR → RTS) that the connect handshake models, driven
    // off the crate's own state machine rather than a hardcoded ladder.
    #[cfg(feature = "simcheck")]
    let mk_state = |qpn: u32| {
        let mut st = simcheck::ib::QpStateOracle::new(u64::from(qpn));
        let now = Some(fab.sim().now().as_nanos());
        let mut phase = QpPhase::Reset;
        while let Some(next) = fsm_next(phase, QpEvent::BringUp) {
            let _ = st.observe_transition(next.oracle_state(), now);
            phase = next;
        }
        debug_assert_eq!(phase, QpPhase::Rts, "bring-up ladder must end in RTS");
        RefCell::new(st)
    };
    let qp_a = IbQp {
        sim: fab.sim().clone(),
        cpu: cpu_a.clone(),
        qpn: qpn_a,
        peer_qpn: qpn_b,
        dev: Rc::clone(&dev_a),
        peer_dev: Rc::clone(&dev_b),
        tx_path: path_ab.clone(),
        local: Rc::clone(&ep_a),
        remote: Rc::clone(&ep_b),
        cq_rx: RefCell::new(cq_rx_a),
        pkt_overhead: ovh,
        fault: fault.clone(),
        conn: (u64::from(qpn_a) << 32) | u64::from(qpn_b),
        #[cfg(feature = "simcheck")]
        state_check: mk_state(qpn_a),
        #[cfg(feature = "simcheck")]
        cq_check: Rc::new(RefCell::new(simcheck::ib::CqOrderOracle::new(u64::from(
            qpn_a,
        )))),
    };
    let qp_b = IbQp {
        sim: fab.sim().clone(),
        cpu: cpu_b.clone(),
        qpn: qpn_b,
        peer_qpn: qpn_a,
        dev: dev_b,
        peer_dev: dev_a,
        tx_path: path_ba,
        local: ep_b,
        remote: ep_a,
        cq_rx: RefCell::new(cq_rx_b),
        pkt_overhead: ovh,
        fault,
        conn: (u64::from(qpn_b) << 32) | u64::from(qpn_a),
        #[cfg(feature = "simcheck")]
        state_check: mk_state(qpn_b),
        #[cfg(feature = "simcheck")]
        cq_check: Rc::new(RefCell::new(simcheck::ib::CqOrderOracle::new(u64::from(
            qpn_b,
        )))),
    };
    (qp_a, qp_b)
}

impl IbQp {
    /// The host this QP lives on.
    pub fn device(&self) -> &Rc<HcaDevice> {
        &self.dev
    }

    /// The process CPU charged for posts.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    async fn charge_post(&self) {
        self.cpu
            .work(self.dev.calib.post_wqe + self.dev.pcie.doorbell_cost())
            .await;
    }

    /// Post a work request. Returns once the WQE is handed to the HCA;
    /// completion arrives on the CQ.
    pub async fn post_send_wr(&self, wr: IbWorkRequest) {
        self.charge_post().await;
        // Conformance oracles: posts require RTS; the completion for this
        // WQE must surface in post order.
        #[cfg(feature = "simcheck")]
        let cqe_seq = {
            let _ = self
                .state_check
                .borrow_mut()
                .observe_post_send(Some(self.sim.now().as_nanos()));
            self.cq_check.borrow_mut().on_post()
        };
        #[cfg(feature = "simcheck")]
        let cq_check = Rc::clone(&self.cq_check);
        // RC QPs deliver in post order.
        let ticket = self.remote.order.ticket();
        let sim = self.sim.clone();
        let fault = self.fault.clone();
        let conn = self.conn;
        let mtu = self.dev.calib.mtu_payload;
        let tuning = IbTuning::mellanox();
        let tx_path = self.tx_path.clone();
        let ovh = self.pkt_overhead;
        let dev = Rc::clone(&self.dev);
        let peer_dev = Rc::clone(&self.peer_dev);
        let local_ep = Rc::clone(&self.local);
        let remote_ep = Rc::clone(&self.remote);
        let qpn = self.qpn;
        let peer_qpn = self.peer_qpn;
        self.sim.spawn(async move {
            // Send-side processor work: WQE fetch, context lookup,
            // packet scheduling. Serial — this is the multi-connection
            // bottleneck.
            dev.engine_message(qpn, dev.calib.msg_cost_tx).await;
            match wr {
                IbWorkRequest::RdmaWrite {
                    wr_id,
                    len,
                    payload,
                    rkey,
                    remote_addr,
                } => {
                    transfer_go_back_n(
                        &sim,
                        &fault,
                        &tx_path,
                        conn,
                        Bytes::new(len),
                        mtu,
                        ovh,
                        &tuning,
                    )
                    .await;
                    // Receive-side processor work (context lookup again).
                    peer_dev
                        .engine_message(peer_qpn, peer_dev.calib.msg_cost_rx)
                        .await;
                    remote_ep.order.enter(ticket).await;
                    remote_ep.order.leave();
                    if !peer_dev.registry.check(rkey, remote_addr, len) {
                        #[cfg(feature = "simcheck")]
                        let _ = cq_check
                            .borrow_mut()
                            .observe_completion(cqe_seq, Some(sim.now().as_nanos()));
                        let _ = local_ep.cq_tx.send(Cqe {
                            wr_id,
                            opcode: CqeOpcode::RdmaWrite,
                            status: CqeStatus::RemoteAccessError,
                            len: 0,
                        });
                        return;
                    }
                    if let Some(p) = payload {
                        peer_dev.mem.write(remote_addr, &p);
                    }
                    remote_ep.placement.notify_one();
                    #[cfg(feature = "simcheck")]
                    let _ = cq_check
                        .borrow_mut()
                        .observe_completion(cqe_seq, Some(sim.now().as_nanos()));
                    let _ = local_ep.cq_tx.send(Cqe {
                        wr_id,
                        opcode: CqeOpcode::RdmaWrite,
                        status: CqeStatus::Success,
                        len,
                    });
                }
                IbWorkRequest::Send {
                    wr_id,
                    len,
                    payload,
                } => {
                    transfer_go_back_n(
                        &sim,
                        &fault,
                        &tx_path,
                        conn,
                        Bytes::new(len),
                        mtu,
                        ovh,
                        &tuning,
                    )
                    .await;
                    peer_dev
                        .engine_message(peer_qpn, peer_dev.calib.msg_cost_rx)
                        .await;
                    deliver_send(&remote_ep, &peer_dev.mem, len, payload);
                    #[cfg(feature = "simcheck")]
                    let _ = cq_check
                        .borrow_mut()
                        .observe_completion(cqe_seq, Some(sim.now().as_nanos()));
                    let _ = local_ep.cq_tx.send(Cqe {
                        wr_id,
                        opcode: CqeOpcode::Send,
                        status: CqeStatus::Success,
                        len,
                    });
                }
            }
        });
    }

    /// Post a receive buffer for incoming Sends.
    pub async fn post_recv(&self, wr_id: u64, addr: VirtAddr, len: u64) {
        self.charge_post().await;
        // Conformance oracle: receive posts require INIT or later.
        #[cfg(feature = "simcheck")]
        let _ = self
            .state_check
            .borrow_mut()
            .observe_post_recv(Some(self.sim.now().as_nanos()));
        let pending = self.local.unmatched.borrow_mut().pop_front();
        match pending {
            Some((slen, payload)) => complete_recv(
                &self.local,
                &self.dev.mem,
                PostedRecv { wr_id, addr, len },
                slen,
                payload,
            ),
            None => self
                .local
                .rq
                .borrow_mut()
                .push_back(PostedRecv { wr_id, addr, len }),
        }
    }

    /// Await the next completion.
    ///
    /// CQs are single-consumer: exactly one task may block here per QP (a
    /// second concurrent consumer would panic via `RefCell`, surfacing the
    /// caller bug immediately).
    #[allow(clippy::await_holding_refcell_ref)]
    pub async fn next_cqe(&self) -> Cqe {
        self.cq_rx
            .borrow_mut()
            .recv()
            .await
            .expect("CQ channel closed")
    }

    /// Non-blocking CQ poll.
    pub fn poll_cq(&self) -> Option<Cqe> {
        self.cq_rx.borrow_mut().try_recv()
    }

    /// Wait for an RDMA Write to place data locally (models target-buffer
    /// polling).
    pub async fn wait_placement(&self) {
        self.local.placement.notified().await;
    }
}

fn deliver_send(
    ep: &Rc<QpEndpoint>,
    mem: &hostmodel::mem::HostMem,
    len: u64,
    payload: Option<Vec<u8>>,
) {
    let posted = ep.rq.borrow_mut().pop_front();
    match posted {
        Some(pr) => complete_recv(ep, mem, pr, len, payload),
        None => ep.unmatched.borrow_mut().push_back((len, payload)),
    }
}

fn complete_recv(
    ep: &Rc<QpEndpoint>,
    mem: &hostmodel::mem::HostMem,
    pr: PostedRecv,
    len: u64,
    payload: Option<Vec<u8>>,
) {
    if len > pr.len {
        let _ = ep.cq_tx.send(Cqe {
            wr_id: pr.wr_id,
            opcode: CqeOpcode::Recv,
            status: CqeStatus::LocalLengthError,
            len: 0,
        });
        return;
    }
    if let Some(p) = payload {
        mem.write(pr.addr, &p);
    }
    let _ = ep.cq_tx.send(Cqe {
        wr_id: pr.wr_id,
        opcode: CqeOpcode::Recv,
        status: CqeStatus::Success,
        len,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostmodel::cpu::CpuCosts;
    use simnet::sync::join2;

    /// The crate machine and the conformance table must agree on every
    /// (phase, event) pair — the runtime complement of the static
    /// `fsm-drift` diff in `simlint --dataflow`.
    #[cfg(feature = "simcheck")]
    #[test]
    fn qp_machine_matches_simcheck_table_exhaustively() {
        use QpEvent::{BringUp, Fatal, TearDown};
        use QpPhase::{Error, Init, Reset, Rtr, Rts};
        for from in [Reset, Init, Rtr, Rts, Error] {
            for ev in [BringUp, Fatal, TearDown] {
                let machine = fsm_next(from, ev).map(QpPhase::table_name);
                let table = simcheck::fsm_lookup(
                    simcheck::ib::QP_FSM_TABLE,
                    from.table_name(),
                    ev.table_name(),
                );
                assert_eq!(machine, table, "{from:?} --{ev:?}--> disagrees");
            }
        }
    }

    fn setup() -> (Sim, IbFabric, Cpu, Cpu) {
        let sim = Sim::new();
        let fab = IbFabric::new(&sim, 2);
        let cpu_a = Cpu::new(&sim, CpuCosts::default());
        let cpu_b = Cpu::new(&sim, CpuCosts::default());
        (sim, fab, cpu_a, cpu_b)
    }

    #[test]
    fn rdma_write_places_data() {
        let (sim, fab, cpu_a, cpu_b) = setup();
        sim.block_on(async move {
            let (qa, qb) = connect(&fab, 0, 1, &cpu_a, &cpu_b).await;
            let dst = qb.device().mem.alloc_buffer(4096);
            let rkey = qb
                .device()
                .registry
                .register_pinned(&cpu_b, dst, 4096)
                .await;
            qa.post_send_wr(IbWorkRequest::RdmaWrite {
                wr_id: 1,
                len: 9,
                payload: Some(b"memfree!!".to_vec()),
                rkey,
                remote_addr: dst,
            })
            .await;
            assert_eq!(qa.next_cqe().await.status, CqeStatus::Success);
            qb.wait_placement().await;
            assert_eq!(qb.device().mem.read(dst, 9), b"memfree!!");
        });
    }

    #[test]
    fn rdma_write_half_rtt_matches_paper() {
        // Paper anchor: 4.53 µs half-RTT for small RDMA Writes.
        let (sim, fab, cpu_a, cpu_b) = setup();
        let t = sim.block_on(async move {
            let (qa, qb) = connect(&fab, 0, 1, &cpu_a, &cpu_b).await;
            let buf_a = qa.device().mem.alloc_buffer(64);
            let buf_b = qb.device().mem.alloc_buffer(64);
            let rk_a = qa
                .device()
                .registry
                .register_pinned(&cpu_a, buf_a, 64)
                .await;
            let rk_b = qb
                .device()
                .registry
                .register_pinned(&cpu_b, buf_b, 64)
                .await;
            let iters = 50u64;
            let sim2 = qa.sim.clone();
            // Warm the ping-pong once so context caches are hot.
            let t0 = sim2.now();
            let ping = async {
                for i in 0..iters {
                    qa.post_send_wr(IbWorkRequest::RdmaWrite {
                        wr_id: i,
                        len: 4,
                        payload: None,
                        rkey: rk_b,
                        remote_addr: buf_b,
                    })
                    .await;
                    qa.wait_placement().await;
                }
            };
            let pong = async {
                for i in 0..iters {
                    qb.wait_placement().await;
                    qb.post_send_wr(IbWorkRequest::RdmaWrite {
                        wr_id: i,
                        len: 4,
                        payload: None,
                        rkey: rk_a,
                        remote_addr: buf_a,
                    })
                    .await;
                }
            };
            join2(ping, pong).await;
            (sim2.now() - t0).as_micros_f64() / (2.0 * iters as f64)
        });
        assert!(
            (t - 4.53).abs() < 0.3,
            "IB half-RTT {t:.2} µs, paper says 4.53 µs"
        );
    }

    #[test]
    fn ib_latency_beats_iwarp_but_loses_to_nothing_on_bandwidth() {
        // Cross-fabric sanity handled in integration tests; here just
        // verify send/recv works end-to-end.
        let (sim, fab, cpu_a, cpu_b) = setup();
        sim.block_on(async move {
            let (qa, qb) = connect(&fab, 0, 1, &cpu_a, &cpu_b).await;
            let rbuf = qb.device().mem.alloc_buffer(256);
            qb.post_recv(5, rbuf, 256).await;
            qa.post_send_wr(IbWorkRequest::Send {
                wr_id: 6,
                len: 3,
                payload: Some(b"via".to_vec()),
            })
            .await;
            let rcqe = qb.next_cqe().await;
            assert_eq!(rcqe.wr_id, 5);
            assert_eq!(qb.device().mem.read(rbuf, 3), b"via");
        });
    }

    #[test]
    fn bad_rkey_yields_remote_access_error() {
        let (sim, fab, cpu_a, cpu_b) = setup();
        sim.block_on(async move {
            let (qa, _qb) = connect(&fab, 0, 1, &cpu_a, &cpu_b).await;
            qa.post_send_wr(IbWorkRequest::RdmaWrite {
                wr_id: 1,
                len: 8,
                payload: None,
                rkey: MemKey(999_999),
                remote_addr: VirtAddr(64),
            })
            .await;
            assert_eq!(qa.next_cqe().await.status, CqeStatus::RemoteAccessError);
        });
    }

    #[test]
    fn many_qps_round_robin_degrades_past_context_cache() {
        // The Fig. 2 mechanism: per-message latency with 16 QPs in
        // round-robin exceeds the 4-QP case because every message faults a
        // context.
        let (sim, fab, cpu_a, cpu_b) = setup();
        let (t4, t16) = sim.block_on(async move {
            let mut qps = Vec::new();
            for _ in 0..16 {
                qps.push(connect(&fab, 0, 1, &cpu_a, &cpu_b).await);
            }
            let dst = qps[0].1.device().mem.alloc_buffer(64);
            let rkey = qps[0]
                .1
                .device()
                .registry
                .register_pinned(&cpu_b, dst, 64)
                .await;
            let sim2 = qps[0].0.sim.clone();
            let measure = |n: usize| {
                let qs: Vec<_> = (0..n).map(|i| &qps[i].0).collect();
                let sim3 = sim2.clone();
                async move {
                    let t0 = sim3.now();
                    for _round in 0..20 {
                        for q in &qs {
                            q.post_send_wr(IbWorkRequest::RdmaWrite {
                                wr_id: 0,
                                len: 4,
                                payload: None,
                                rkey,
                                remote_addr: dst,
                            })
                            .await;
                        }
                        for q in &qs {
                            q.next_cqe().await;
                        }
                    }
                    (sim3.now() - t0).as_micros_f64() / (20.0 * n as f64)
                }
            };
            let t4 = measure(4).await;
            let t16 = measure(16).await;
            (t4, t16)
        });
        assert!(
            t16 > t4 * 1.2,
            "per-message time with 16 QPs ({t16:.2} µs) must exceed 4 QPs ({t4:.2} µs)"
        );
    }
}
