//! InfiniBand wire formats: LRH, BTH, RETH and MTU packetization.
//!
//! Enough of the IBA packet grammar to carry the verbs operations the
//! paper exercises (RDMA Write and Send over Reliable Connected), with
//! byte-accurate header sizes so bandwidth efficiency comes out of the
//! encoding rather than a fudge factor.

/// Local Route Header length.
pub const LRH_LEN: usize = 8;
/// Base Transport Header length.
pub const BTH_LEN: usize = 12;
/// RDMA Extended Transport Header length (first packet of RDMA ops).
pub const RETH_LEN: usize = 16;
/// Invariant + variant CRC trailer.
pub const CRC_LEN: usize = 6;

/// BTH opcodes (RC subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IbOpcode {
    /// RC Send only.
    SendOnly,
    /// RC Send, first packet.
    SendFirst,
    /// RC Send, middle packet.
    SendMiddle,
    /// RC Send, last packet.
    SendLast,
    /// RC RDMA Write only.
    WriteOnly,
    /// RC RDMA Write, first packet.
    WriteFirst,
    /// RC RDMA Write, middle packet.
    WriteMiddle,
    /// RC RDMA Write, last packet.
    WriteLast,
    /// RC Acknowledge.
    Ack,
}

impl IbOpcode {
    fn to_u8(self) -> u8 {
        match self {
            IbOpcode::SendFirst => 0x00,
            IbOpcode::SendMiddle => 0x01,
            IbOpcode::SendLast => 0x02,
            IbOpcode::SendOnly => 0x04,
            IbOpcode::WriteFirst => 0x06,
            IbOpcode::WriteMiddle => 0x07,
            IbOpcode::WriteLast => 0x08,
            IbOpcode::WriteOnly => 0x0A,
            IbOpcode::Ack => 0x11,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => IbOpcode::SendFirst,
            0x01 => IbOpcode::SendMiddle,
            0x02 => IbOpcode::SendLast,
            0x04 => IbOpcode::SendOnly,
            0x06 => IbOpcode::WriteFirst,
            0x07 => IbOpcode::WriteMiddle,
            0x08 => IbOpcode::WriteLast,
            0x0A => IbOpcode::WriteOnly,
            0x11 => IbOpcode::Ack,
            _ => return None,
        })
    }
}

/// An IB packet header set (LRH + BTH [+ RETH]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IbPacket {
    /// Destination LID.
    pub dlid: u16,
    /// Source LID.
    pub slid: u16,
    /// Opcode.
    pub opcode: IbOpcode,
    /// Destination QP number.
    pub dest_qp: u32,
    /// Packet sequence number.
    pub psn: u32,
    /// RETH: present on the first/only packet of RDMA operations.
    pub reth: Option<Reth>,
    /// Payload.
    pub payload: Vec<u8>,
}

/// RDMA Extended Transport Header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reth {
    /// Remote virtual address.
    pub va: u64,
    /// Remote key.
    pub rkey: u32,
    /// DMA length of the whole operation.
    pub dma_len: u32,
}

impl IbPacket {
    /// Serialize to wire bytes (CRCs appended as zero placeholders — the
    /// simulated wire is error-free; sizes still count).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            LRH_LEN + BTH_LEN + self.reth.map_or(0, |_| RETH_LEN) + self.payload.len() + CRC_LEN,
        );
        // LRH: VL/LVer, SL/rsvd, DLID, length, SLID.
        out.push(0);
        out.push(0);
        out.extend_from_slice(&self.dlid.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // packet length filled below
        out.extend_from_slice(&self.slid.to_be_bytes());
        // BTH.
        out.push(self.opcode.to_u8());
        out.push(if self.reth.is_some() { 0x80 } else { 0 }); // SE bit reused as RETH flag
        out.extend_from_slice(&0u16.to_be_bytes()); // pkey
        out.extend_from_slice(&self.dest_qp.to_be_bytes()); // rsvd+QPN (24-bit in real IB)
        out.extend_from_slice(&self.psn.to_be_bytes()); // A+PSN
        if let Some(r) = self.reth {
            out.extend_from_slice(&r.va.to_be_bytes());
            out.extend_from_slice(&r.rkey.to_be_bytes());
            out.extend_from_slice(&r.dma_len.to_be_bytes());
        }
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&[0u8; CRC_LEN]);
        let total = out.len() as u16;
        out[4..6].copy_from_slice(&total.to_be_bytes());
        out
    }

    /// Parse from wire bytes.
    pub fn decode(data: &[u8]) -> Option<IbPacket> {
        if data.len() < LRH_LEN + BTH_LEN + CRC_LEN {
            return None;
        }
        let dlid = u16::from_be_bytes([data[2], data[3]]);
        let total = u16::from_be_bytes([data[4], data[5]]) as usize;
        if total != data.len() {
            return None;
        }
        let slid = u16::from_be_bytes([data[6], data[7]]);
        let opcode = IbOpcode::from_u8(data[8])?;
        let has_reth = data[9] & 0x80 != 0;
        let dest_qp = u32::from_be_bytes([data[12], data[13], data[14], data[15]]);
        let psn = u32::from_be_bytes([data[16], data[17], data[18], data[19]]);
        let mut off = LRH_LEN + BTH_LEN;
        let reth = if has_reth {
            if data.len() < off + RETH_LEN + CRC_LEN {
                return None;
            }
            let va = u64::from_be_bytes(data[off..off + 8].try_into().ok()?);
            let rkey = u32::from_be_bytes(data[off + 8..off + 12].try_into().ok()?);
            let dma_len = u32::from_be_bytes(data[off + 12..off + 16].try_into().ok()?);
            off += RETH_LEN;
            Some(Reth { va, rkey, dma_len })
        } else {
            None
        };
        Some(IbPacket {
            dlid,
            slid,
            opcode,
            dest_qp,
            psn,
            reth,
            payload: data[off..data.len() - CRC_LEN].to_vec(),
        })
    }
}

/// Packetize an RDMA Write of `payload` into MTU-sized RC packets with
/// correct first/middle/last opcodes and a RETH on the first packet.
pub fn packetize_write(
    payload: &[u8],
    va: u64,
    rkey: u32,
    dest_qp: u32,
    start_psn: u32,
    mtu: usize,
) -> Vec<IbPacket> {
    let chunks: Vec<&[u8]> = if payload.is_empty() {
        vec![&[]]
    } else {
        payload.chunks(mtu).collect()
    };
    let n = chunks.len();
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, c)| IbPacket {
            dlid: 0,
            slid: 0,
            opcode: match (i, n) {
                (_, 1) => IbOpcode::WriteOnly,
                (0, _) => IbOpcode::WriteFirst,
                (i, n) if i == n - 1 => IbOpcode::WriteLast,
                _ => IbOpcode::WriteMiddle,
            },
            dest_qp,
            psn: start_psn.wrapping_add(i as u32),
            reth: (i == 0).then_some(Reth {
                va,
                rkey,
                dma_len: payload.len() as u32,
            }),
            payload: c.to_vec(),
        })
        .collect()
}

/// Reassemble the payload of a packetized RDMA write, verifying opcode
/// sequencing and PSN continuity. Returns `(va, payload)`.
pub fn reassemble_write(packets: &[IbPacket]) -> Option<(u64, Vec<u8>)> {
    let first = packets.first()?;
    let reth = first.reth?;
    let mut payload = Vec::with_capacity(reth.dma_len as usize);
    let mut psn = first.psn;
    for (i, p) in packets.iter().enumerate() {
        if p.psn != psn {
            return None;
        }
        psn = psn.wrapping_add(1);
        let expected = match (i, packets.len()) {
            (_, 1) => IbOpcode::WriteOnly,
            (0, _) => IbOpcode::WriteFirst,
            (i, n) if i == n - 1 => IbOpcode::WriteLast,
            _ => IbOpcode::WriteMiddle,
        };
        if p.opcode != expected {
            return None;
        }
        payload.extend_from_slice(&p.payload);
    }
    if payload.len() != reth.dma_len as usize {
        return None;
    }
    Some((reth.va, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrip_with_reth() {
        let p = IbPacket {
            dlid: 3,
            slid: 4,
            opcode: IbOpcode::WriteOnly,
            dest_qp: 0x12345,
            psn: 77,
            reth: Some(Reth {
                va: 0xDEAD_0000,
                rkey: 42,
                dma_len: 11,
            }),
            payload: b"hello infra".to_vec(),
        };
        assert_eq!(IbPacket::decode(&p.encode()), Some(p));
    }

    #[test]
    fn packet_roundtrip_without_reth() {
        let p = IbPacket {
            dlid: 1,
            slid: 2,
            opcode: IbOpcode::SendOnly,
            dest_qp: 9,
            psn: 0,
            reth: None,
            payload: vec![5u8; 100],
        };
        assert_eq!(IbPacket::decode(&p.encode()), Some(p));
    }

    #[test]
    fn truncated_packet_rejected() {
        let p = IbPacket {
            dlid: 1,
            slid: 2,
            opcode: IbOpcode::Ack,
            dest_qp: 9,
            psn: 1,
            reth: None,
            payload: vec![],
        };
        let enc = p.encode();
        assert_eq!(IbPacket::decode(&enc[..enc.len() - 1]), None);
    }

    #[test]
    fn packetization_first_middle_last() {
        let payload: Vec<u8> = (0..5000).map(|i| (i % 253) as u8).collect();
        let pkts = packetize_write(&payload, 0x1000, 7, 3, 100, 2048);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].opcode, IbOpcode::WriteFirst);
        assert_eq!(pkts[1].opcode, IbOpcode::WriteMiddle);
        assert_eq!(pkts[2].opcode, IbOpcode::WriteLast);
        assert!(pkts[0].reth.is_some());
        assert!(pkts[1].reth.is_none());
        let (va, got) = reassemble_write(&pkts).expect("reassemble");
        assert_eq!(va, 0x1000);
        assert_eq!(got, payload);
    }

    #[test]
    fn single_packet_write_uses_only_opcode() {
        let pkts = packetize_write(b"tiny", 0, 1, 1, 0, 2048);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].opcode, IbOpcode::WriteOnly);
        let (_va, got) = reassemble_write(&pkts).unwrap();
        assert_eq!(got, b"tiny");
    }

    #[test]
    fn psn_gap_detected() {
        let payload = vec![1u8; 5000];
        let mut pkts = packetize_write(&payload, 0, 1, 1, 10, 2048);
        pkts[1].psn += 1;
        assert_eq!(reassemble_write(&pkts), None);
    }

    #[test]
    fn header_overhead_matches_calibration() {
        // 42 bytes = LRH + BTH + RETH + CRCs; the per-packet overhead used
        // by the timing model must match the real encoding.
        let p = IbPacket {
            dlid: 0,
            slid: 0,
            opcode: IbOpcode::WriteOnly,
            dest_qp: 0,
            psn: 0,
            reth: Some(Reth {
                va: 0,
                rkey: 0,
                dma_len: 4,
            }),
            payload: vec![0u8; 4],
        };
        assert_eq!(p.encode().len() - 4, LRH_LEN + BTH_LEN + RETH_LEN + CRC_LEN);
        assert_eq!(LRH_LEN + BTH_LEN + RETH_LEN + CRC_LEN, 42);
    }
}
