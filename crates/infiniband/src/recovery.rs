//! RC go-back-N retransmission over a [`Pipeline`]: PSN-based NAK recovery
//! with a transport ACK timer and RNR-style exponential backoff.
//!
//! InfiniBand reliable-connected QPs do not do TCP's selective repeat. The
//! responder accepts packets only in PSN order; a hole makes it discard
//! everything after the missing packet and return an out-of-sequence NAK,
//! and the requester then **rewinds to the lost PSN and resends the whole
//! tail** (go-back-N). A lost *tail* packet produces no NAK at all — the
//! requester's Local ACK Timeout fires instead, and repeated expiries back
//! off exponentially the way an RNR NAK schedule does.
//!
//! The transfer is judged packet-by-packet (at the path MTU) against a
//! [`FaultPlane`]; contiguous delivered runs are streamed through the
//! pipeline in one reservation so a healthy stream keeps the cut-through
//! fast path. Each recovery event charges the protocol's real latency
//! (NAK round trip or ACK timeout) and counts `tail_len` retransmissions —
//! the go-back-N inefficiency the `fig-loss` experiment contrasts against
//! TCP's one-segment fast retransmit.
//!
//! With the plane disabled the function is one branch and a tail call to
//! [`Pipeline::transfer`] — bit-identical to the pre-fault code path.

use simnet::{Bytes, FaultDecision, FaultPlane, Pipeline, Sim, SimDuration};

/// RC retransmission-timer calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbTuning {
    /// Requester Local ACK Timeout: fires when a tail packet (or its ACK)
    /// vanishes and no NAK can be generated.
    pub ack_timeout: SimDuration,
    /// Time from a mid-stream loss to the responder's out-of-sequence NAK
    /// arriving back — about one round trip.
    pub nak_delay: SimDuration,
    /// Consecutive-timeout ceiling: the ACK timer doubles per attempt up to
    /// `ack_timeout << max_backoff_exp` (the RNR backoff schedule).
    pub max_backoff_exp: u32,
    /// Retry budget per packet (the QP's Retry Count). Past it the model
    /// forces the packet through so pathological configured rates still
    /// terminate; real hardware would transition the QP to the error state.
    pub max_retries: u32,
}

impl IbTuning {
    /// Timers scaled to the MHEA28-XT fabric's ~9 µs RTT.
    pub fn mellanox() -> Self {
        IbTuning {
            ack_timeout: SimDuration::from_micros(40),
            nak_delay: SimDuration::from_micros(10),
            max_backoff_exp: 6,
            max_retries: 16,
        }
    }
}

impl Default for IbTuning {
    fn default() -> Self {
        IbTuning::mellanox()
    }
}

/// What one recovering transfer cost (the same quantities accumulate
/// globally in [`simnet::SimStats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IbRecoveryStats {
    /// Faults this transfer absorbed (drops + corruptions + delays).
    pub faults: u64,
    /// Packets retransmitted (every recovery event resends the whole tail).
    pub retransmits: u64,
    /// Local ACK Timeout expiries.
    pub rto_fires: u64,
}

/// Stream `bytes` through `path` in `mtu`-sized packets with RC go-back-N
/// recovery against `plane`. Resolves when the last byte clears the
/// pipeline (exactly like [`Pipeline::transfer`], which it becomes when the
/// plane is disabled). `stream` keys the plane's per-connection decision
/// counter and tags conformance reports.
#[allow(clippy::too_many_arguments)]
pub async fn transfer_go_back_n(
    sim: &Sim,
    plane: &FaultPlane,
    path: &Pipeline,
    stream: u64,
    bytes: Bytes,
    mtu: Bytes,
    per_packet_overhead: Bytes,
    tuning: &IbTuning,
) -> IbRecoveryStats {
    if !plane.enabled() {
        path.transfer(bytes, per_packet_overhead).await;
        return IbRecoveryStats::default();
    }
    let mtu = mtu.max(Bytes::new(1));
    let npkts = bytes.div_ceil(mtu).max(1);
    // Byte length of the packet run [lo, hi): full MTUs plus a short tail.
    let run_bytes = |lo: u64, hi: u64| -> Bytes {
        if hi == npkts {
            bytes - mtu * lo
        } else {
            mtu * (hi - lo)
        }
    };
    let mut stats = IbRecoveryStats::default();
    #[cfg(feature = "simcheck")]
    let mut oracle = simcheck::fault::DeliveryOracle::new("ib", stream, npkts);
    #[cfg(feature = "simcheck")]
    let mut observe_run = |lo: u64, hi: u64, now_ns: u64| {
        for idx in lo..hi {
            let _ = oracle.on_deliver(idx, Some(now_ns));
        }
    };

    let mut run_start = 0u64;
    let mut i = 0u64;
    while i < npkts {
        match plane.judge(sim, stream) {
            FaultDecision::Deliver => {
                i += 1;
            }
            FaultDecision::Delay => {
                stats.faults += 1;
                path.transfer(run_bytes(run_start, i + 1), per_packet_overhead)
                    .await;
                sim.sleep(plane.delay()).await;
                #[cfg(feature = "simcheck")]
                observe_run(run_start, i + 1, sim.now().as_nanos());
                i += 1;
                run_start = i;
            }
            FaultDecision::Drop | FaultDecision::Corrupt => {
                stats.faults += 1;
                // The responder saw (and ACKed) everything up to the hole;
                // stream that prefix out before recovering.
                if run_start < i {
                    path.transfer(run_bytes(run_start, i), per_packet_overhead)
                        .await;
                    #[cfg(feature = "simcheck")]
                    observe_run(run_start, i, sim.now().as_nanos());
                }
                // Go-back-N: the responder discards the out-of-order tail,
                // so the whole span [i, npkts) is resent on every attempt.
                let tail = npkts - i;
                let mut attempt = 0u32;
                loop {
                    if attempt == 0 && tail > 1 {
                        // Packets behind the hole arrive out of PSN order;
                        // the responder NAKs the missing PSN after ~RTT.
                        sim.sleep(tuning.nak_delay).await;
                    } else {
                        // Tail loss (no later packet to trigger a NAK) or a
                        // lost retransmission: the Local ACK Timeout fires,
                        // backing off per consecutive expiry.
                        let exp = attempt.min(tuning.max_backoff_exp);
                        sim.sleep(tuning.ack_timeout * (1u64 << exp)).await;
                        sim.note_rto_fire();
                        stats.rto_fires += 1;
                    }
                    sim.note_retransmits(tail);
                    stats.retransmits += tail;
                    attempt += 1;
                    let delivered = attempt > tuning.max_retries
                        || matches!(
                            plane.judge(sim, stream),
                            FaultDecision::Deliver | FaultDecision::Delay
                        );
                    if delivered {
                        path.transfer(run_bytes(i, i + 1), per_packet_overhead)
                            .await;
                        #[cfg(feature = "simcheck")]
                        observe_run(i, i + 1, sim.now().as_nanos());
                        break;
                    }
                    stats.faults += 1;
                }
                i += 1;
                run_start = i;
            }
        }
    }
    if run_start < npkts {
        path.transfer(run_bytes(run_start, npkts), per_packet_overhead)
            .await;
        #[cfg(feature = "simcheck")]
        observe_run(run_start, npkts, sim.now().as_nanos());
    }
    #[cfg(feature = "simcheck")]
    {
        let now = Some(sim.now().as_nanos());
        let _ = oracle.finish(now);
        // Go-back-N resends at most the whole message per recovery event.
        let _ = simcheck::fault::check_retransmit_bound(
            "ib",
            stream,
            stats.faults,
            stats.retransmits,
            npkts,
            now,
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ByteRate, FaultConfig, Pipe, Stage};

    fn test_path(sim: &Sim) -> Pipeline {
        let stages = vec![
            Stage::new(
                Pipe::new(sim, ByteRate::from_gbps(8), SimDuration::ZERO),
                SimDuration::from_nanos(740),
            ),
            Stage::new(
                Pipe::new(sim, ByteRate::from_gbps(8), SimDuration::ZERO),
                SimDuration::from_nanos(100),
            ),
        ];
        Pipeline::new(sim, stages, Bytes::new(2048))
    }

    fn run(plane: FaultPlane, bytes: u64) -> (f64, IbRecoveryStats, simnet::SimStats) {
        let sim = Sim::new();
        let path = test_path(&sim);
        let stats = sim.block_on({
            let sim2 = sim.clone();
            async move {
                transfer_go_back_n(
                    &sim2,
                    &plane,
                    &path,
                    11,
                    Bytes::new(bytes),
                    Bytes::new(2048),
                    Bytes::new(42),
                    &IbTuning::mellanox(),
                )
                .await
            }
        });
        (sim.now().as_micros_f64(), stats, sim.stats())
    }

    #[test]
    fn disabled_plane_is_bit_identical_to_plain_transfer() {
        let sim = Sim::new();
        let path = test_path(&sim);
        sim.block_on(async move {
            path.transfer(Bytes::new(1 << 20), Bytes::new(42)).await;
        });
        let baseline = sim.now().as_nanos();
        let (t, stats, sstats) = run(FaultPlane::disabled(), 1 << 20);
        assert_eq!((t * 1000.0).round() as u64, baseline);
        assert_eq!(stats, IbRecoveryStats::default());
        assert_eq!(sstats.faults_injected, 0);
        assert_eq!(sstats.retransmits, 0);
    }

    #[test]
    fn loss_slows_the_transfer_and_resends_whole_tails() {
        let (t_clean, _, _) = run(FaultPlane::disabled(), 1 << 20);
        // 1% loss over 512 packets: expect several recovery events.
        let plane = FaultPlane::new(FaultConfig::loss(10_000, 99));
        let (t_lossy, stats, sstats) = run(plane, 1 << 20);
        assert!(stats.faults > 0, "1% loss over 512 packets injected none");
        assert!(
            stats.retransmits > stats.faults,
            "go-back-N must resend more than one packet per fault \
             ({} retransmits for {} faults)",
            stats.retransmits,
            stats.faults
        );
        assert!(
            t_lossy > t_clean,
            "recovery must cost time: {t_lossy:.1} vs {t_clean:.1} µs"
        );
        assert_eq!(sstats.faults_injected, stats.faults);
        assert_eq!(sstats.retransmits, stats.retransmits);
        assert_eq!(sstats.rto_fires, stats.rto_fires);
    }

    #[test]
    fn nak_and_ack_timeout_paths_both_appear_across_seeds() {
        let mut saw_nak = false;
        let mut saw_timeout = false;
        for seed in 0..8u64 {
            let plane = FaultPlane::new(FaultConfig::loss(200_000, seed));
            let (_, stats, _) = run(plane, 100 * 2048);
            // A mid-stream loss recovered on the first attempt costs no
            // timeout; its retransmits show up without an rto_fire.
            if stats.rto_fires > 0 {
                saw_timeout = true;
            }
            if stats.faults > stats.rto_fires {
                saw_nak = true;
            }
        }
        assert!(saw_nak, "no seed exercised the NAK path");
        assert!(saw_timeout, "no seed exercised the ACK-timeout path");
    }

    #[test]
    fn recovery_is_deterministic() {
        let mk = || FaultPlane::new(FaultConfig::loss(10_000, 4242));
        let (t1, s1, _) = run(mk(), 1 << 20);
        let (t2, s2, _) = run(mk(), 1 << 20);
        assert!((t1 - t2).abs() < f64::EPSILON);
        assert_eq!(s1, s2);
    }

    #[test]
    fn pathological_rates_still_terminate_with_exact_accounting() {
        // 100% drop, 4 packets. Each packet i: 1 initial fault + 16 failed
        // re-judges, then forced through after max_retries + 1 = 17
        // attempts, each resending the tail of npkts - i packets.
        let plane = FaultPlane::new(FaultConfig::loss(1_000_000, 1));
        let (_, stats, _) = run(plane, 4 * 2048);
        assert_eq!(stats.faults, 4 * 17);
        assert_eq!(stats.retransmits, 17 * (4 + 3 + 2 + 1));
        assert!(stats.rto_fires > 0);
    }

    #[test]
    fn delay_faults_delay_without_retransmitting() {
        let sim = Sim::new();
        let path = test_path(&sim);
        let plane = FaultPlane::new(FaultConfig {
            drop_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 1_000_000,
            delay: SimDuration::from_micros(50),
            seed: 3,
        });
        let stats = sim.block_on({
            let sim2 = sim.clone();
            async move {
                transfer_go_back_n(
                    &sim2,
                    &plane,
                    &path,
                    1,
                    Bytes::new(2 * 2048),
                    Bytes::new(2048),
                    Bytes::new(42),
                    &IbTuning::mellanox(),
                )
                .await
            }
        });
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.rto_fires, 0);
        assert_eq!(stats.faults, 2);
        assert!(sim.now().as_micros_f64() >= 100.0, "two 50 µs delays");
    }
}
