//! Timing calibration for the Mellanox MHEA28-XT (MemFree) 4X HCA model.
//!
//! Anchors from the paper:
//! * RDMA Write half-RTT (small msg): **4.53 µs**.
//! * Verbs unidirectional bandwidth: **~970 MB/s** (97% of the 1 GB/s 4X
//!   SDR data rate).
//! * MPI both-way bandwidth ≈ **89%** of the 2 GB/s aggregate (~1780 MB/s)
//!   — the shared protocol processor serves both directions.
//! * Multi-connection latency/throughput degrade past **8** connections
//!   for messages < 4 KB (QP-context cache exhaustion).

use hostmodel::mem::RegistrationCosts;
use hostmodel::pcie::PcieConfig;
use simnet::{ByteRate, Bytes, SimDuration};

/// Complete calibration for one Mellanox HCA + host.
#[derive(Clone, Copy, Debug)]
pub struct MellanoxCalib {
    /// PCIe x8 slot.
    pub pcie: PcieConfig,
    /// Protocol processor throughput (serves both directions).
    pub engine_bytes_per_sec: ByteRate,
    /// Processor per-packet occupancy.
    pub engine_packet_overhead: SimDuration,
    /// Processor pipeline latency per direction.
    pub engine_latency: SimDuration,
    /// Per-message processor occupancy on the send side (WQE fetch,
    /// context lookup, packet scheduling).
    pub msg_cost_tx: SimDuration,
    /// Per-message processor occupancy on the receive side.
    pub msg_cost_rx: SimDuration,
    /// Extra occupancy when the QP context is not cached (fetched from
    /// host memory across PCIe — the MemFree design).
    pub context_miss_penalty: SimDuration,
    /// QP-context cache capacity (the knee of Fig. 2 sits here).
    pub context_cache_entries: usize,
    /// 4X SDR data rate per direction.
    pub link_bytes_per_sec: ByteRate,
    /// Cable + SerDes latency per hop.
    pub link_latency: SimDuration,
    /// CPU cost to build and post a WQE.
    pub post_wqe: SimDuration,
    /// Path MTU payload per packet.
    pub mtu_payload: Bytes,
    /// Wire overhead per packet: LRH(8) + BTH(12) + RETH(16) + ICRC(4) +
    /// VCRC(2).
    pub per_packet_overhead_bytes: Bytes,
    /// Memory-registration cost model. InfiniBand registration on this
    /// generation is notoriously expensive per page; the paper's Fig. 6
    /// shows a 4.3x buffer-reuse penalty at 128 KB, versus ~2x for iWARP.
    pub registration: RegistrationCosts,
    /// Connection-establishment host work (QP state transitions via the
    /// subnet manager path).
    pub connect_cpu: SimDuration,
}

impl Default for MellanoxCalib {
    fn default() -> Self {
        MellanoxCalib {
            pcie: PcieConfig::gen1_x8(),
            engine_bytes_per_sec: ByteRate::from_bytes_per_sec(1_845_000_000),
            engine_packet_overhead: SimDuration::from_nanos(40),
            engine_latency: SimDuration::from_nanos(740),
            msg_cost_tx: SimDuration::from_nanos(550),
            msg_cost_rx: SimDuration::from_nanos(550),
            context_miss_penalty: SimDuration::from_nanos(1_000),
            context_cache_entries: 8,
            link_bytes_per_sec: ByteRate::from_gbps(8),
            link_latency: SimDuration::from_nanos(100),
            post_wqe: SimDuration::from_nanos(300),
            mtu_payload: Bytes::new(2_048),
            per_packet_overhead_bytes: Bytes::new(42),
            registration: RegistrationCosts {
                // Effective costs calibrated to the paper's Fig. 6: a 4.3x
                // buffer-reuse latency ratio at 128 KB implies roughly
                // 600 µs of registration work per fresh 32-page buffer on
                // MVAPICH 0.9.5 — absorbing the driver, page-table and
                // pin-down-cache-churn effects the model does not separate.
                base: SimDuration::from_micros(30),
                per_page: SimDuration::from_micros(19),
                dereg: SimDuration::from_micros(25),
                cache_hit: SimDuration::from_nanos(150),
                cache_capacity: 16,
            },
            connect_cpu: SimDuration::from_micros(60),
        }
    }
}
