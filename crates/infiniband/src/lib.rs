//! # infiniband — IB verbs over a simulated Mellanox 4X HCA
//!
//! Models the InfiniBand side of the comparison: the verbs interface
//! (QP/CQ/MR with lkey/rkey, reliable-connected transport), the wire format
//! (LRH/BTH/RETH packetization at the 2 KB path MTU), and — crucially for
//! the paper's multi-connection experiment — the **processor-based** HCA
//! core:
//!
//! * every message, in both directions, passes through one serial protocol
//!   processor ([`hca::HcaDevice::engine`]);
//! * QP context lives in *host* memory (the MHEA28-XT is a MemFree card);
//!   the processor keeps only a small context cache, so cycling over more
//!   than [`calib::MellanoxCalib::context_cache_entries`] connections
//!   faults a context fetch on every message.
//!
//! That pair of properties is the paper's explanation for why the Mellanox
//! card stops scaling past 8 connections while the pipelined NetEffect RNIC
//! keeps improving, and here it is a mechanism, not a curve fit.

#![forbid(unsafe_code)]

pub mod calib;
pub mod hca;
pub mod packets;
pub mod recovery;
pub mod verbs;

pub use calib::MellanoxCalib;
pub use hca::{shard_host_path, shard_host_path_at, HcaDevice, IbFabric};
pub use recovery::{transfer_go_back_n, IbRecoveryStats, IbTuning};
pub use verbs::{connect, IbQp, IbWorkRequest};
