//! The Mellanox MHEA28-XT HCA hardware model and fabric wiring.
//!
//! Unlike the NetEffect RNIC's deep pipeline, this HCA routes every message
//! through one serial protocol **processor**. Two consequences the paper
//! measures:
//!
//! 1. The processor serves both directions, so both-way traffic contends
//!    for it (IB both-way tops out near 89% of 2x link rate).
//! 2. Per-QP connection context lives in host memory (MemFree); the
//!    processor caches only a few contexts. Round-robin over more
//!    connections than the cache holds faults a context fetch on *every*
//!    message — the paper's Fig. 2 knee at 8 connections.

use std::cell::RefCell;
use std::rc::Rc;

use etherstack::switch::{CutThroughSwitch, SwitchConfig};
use hostmodel::lru::LruCache;
use hostmodel::mem::HostMem;
use hostmodel::pcie::PciePort;
use hostmodel::MemoryRegistry;
use simnet::{FaultPlane, Pipe, Pipeline, Sim, SimDuration, Stage};

use crate::calib::MellanoxCalib;

/// One Mellanox HCA installed in one host.
pub struct HcaDevice {
    sim: Sim,
    /// Node index within the fabric.
    pub node: usize,
    /// Calibration in effect.
    pub calib: MellanoxCalib,
    /// The PCIe slot.
    pub pcie: PciePort,
    /// Host memory of this node.
    pub mem: HostMem,
    /// MR registry (lkey/rkey space).
    pub registry: MemoryRegistry,
    /// The serial protocol processor — shared by both directions.
    pub engine: Pipe,
    /// Host-to-switch wire.
    pub link_tx: Pipe,
    /// QP-context cache (keyed by QP number).
    context_cache: RefCell<LruCache<u32, ()>>,
}

impl HcaDevice {
    fn new(sim: &Sim, node: usize, calib: MellanoxCalib) -> Self {
        HcaDevice {
            sim: sim.clone(),
            node,
            calib,
            pcie: PciePort::new(sim, calib.pcie),
            mem: HostMem::new(),
            registry: MemoryRegistry::new(calib.registration),
            engine: Pipe::new(
                sim,
                calib.engine_bytes_per_sec,
                calib.engine_packet_overhead,
            ),
            link_tx: Pipe::new(sim, calib.link_bytes_per_sec, SimDuration::ZERO),
            context_cache: RefCell::new(LruCache::new(calib.context_cache_entries)),
        }
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Occupy the protocol processor for one message's worth of work on
    /// `qpn`, including a context fetch if the QP's context is not cached.
    /// Returns when the processor has finished this message's bookkeeping.
    ///
    /// On a miss, the context fetch from host memory (MemFree) stalls the
    /// processor *while it holds the engine* — the fetch round-trip is
    /// part of the occupancy, which both serializes competing messages
    /// (the Fig. 2 mechanism) and keeps per-QP message order intact.
    pub async fn engine_message(&self, qpn: u32, base_cost: SimDuration) {
        let miss = {
            let mut cache = self.context_cache.borrow_mut();
            if cache.get(&qpn).is_none() {
                cache.insert(qpn, ());
                true
            } else {
                false
            }
        };
        let cost = if miss {
            base_cost
                + self.calib.context_miss_penalty
                + self.calib.pcie.dma_latency
                + self.calib.pcie.dma_overhead
        } else {
            base_cost
        };
        let (_s, end) = self.engine.occupy(cost);
        self.sim.sleep_until(end).await;
    }

    /// Context-cache statistics `(hits, misses, evictions)`.
    pub fn context_stats(&self) -> (u64, u64, u64) {
        self.context_cache.borrow().stats()
    }
}

/// A multi-node InfiniBand fabric: one HCA per node, one 4X switch.
pub struct IbFabric {
    sim: Sim,
    switch: CutThroughSwitch,
    devices: Vec<Rc<HcaDevice>>,
    next_qpn: std::cell::Cell<u32>,
    /// Memoized `src → dst` pipelines; clones share the cached stage slice
    /// (and calendars), so repeat transfers on an idle path keep hitting the
    /// simnet cut-through fast path instead of rebuilding six stages.
    paths: std::cell::RefCell<std::collections::BTreeMap<(usize, usize), Pipeline>>,
    /// Fault plane QPs capture at connect time (disabled by default).
    fault: RefCell<FaultPlane>,
}

impl IbFabric {
    /// Build a fabric of `nodes` hosts with default calibration.
    pub fn new(sim: &Sim, nodes: usize) -> Self {
        Self::with_calib(sim, nodes, MellanoxCalib::default())
    }

    /// Build with explicit calibration (ablations override fields).
    pub fn with_calib(sim: &Sim, nodes: usize, calib: MellanoxCalib) -> Self {
        assert!(nodes >= 2, "a fabric needs at least two nodes");
        IbFabric {
            sim: sim.clone(),
            switch: CutThroughSwitch::new(sim, SwitchConfig::mellanox_ib(), nodes),
            devices: (0..nodes)
                .map(|n| Rc::new(HcaDevice::new(sim, n, calib)))
                .collect(),
            next_qpn: std::cell::Cell::new(1),
            paths: std::cell::RefCell::new(std::collections::BTreeMap::new()),
            fault: RefCell::new(FaultPlane::disabled()),
        }
    }

    /// Install a fault plane. QPs connected *after* this call judge every
    /// data packet against it; with the plane disabled (the default) the
    /// fabric is bit-identical to the fault-free build.
    pub fn set_fault_plane(&self, plane: FaultPlane) {
        // Key the transfer memo on the plane's configuration: outcomes
        // cached fault-free never replay under faults (see `simnet::memo`).
        self.sim.set_fault_fingerprint(plane.fingerprint());
        *self.fault.borrow_mut() = plane;
    }

    /// The currently installed fault plane (cloned; clones share state).
    pub fn fault_plane(&self) -> FaultPlane {
        self.fault.borrow().clone()
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Device installed in node `n`.
    pub fn device(&self, n: usize) -> Rc<HcaDevice> {
        Rc::clone(&self.devices[n])
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.devices.len()
    }

    /// Allocate a fabric-unique QP number.
    pub fn alloc_qpn(&self) -> u32 {
        let q = self.next_qpn.get();
        self.next_qpn.set(q + 1);
        q
    }

    /// The one-directional data path `src → dst`, built once per pair and
    /// cached.
    pub fn data_path(&self, src: usize, dst: usize) -> Pipeline {
        assert_ne!(src, dst, "loopback is not modelled");
        if let Some(p) = self.paths.borrow().get(&(src, dst)) {
            return p.clone();
        }
        let path = self.build_data_path(src, dst);
        self.paths.borrow_mut().insert((src, dst), path.clone());
        path
    }

    fn build_data_path(&self, src: usize, dst: usize) -> Pipeline {
        let s = &self.devices[src];
        let d = &self.devices[dst];
        let c = &s.calib;
        let stages = vec![
            Stage::new(s.pcie.to_device_pipe().clone(), c.pcie.dma_latency),
            // The serial processor is a *stage* for data movement too: its
            // bandwidth bounds both-way aggregate.
            Stage::new(s.engine.clone(), c.engine_latency),
            Stage::new(s.link_tx.clone(), c.link_latency),
            self.switch.stage_to(dst),
            Stage::new(d.engine.clone(), d.calib.engine_latency),
            Stage::new(
                d.pcie.to_host_pipe().clone(),
                SimDuration::from_nanos(d.calib.pcie.dma_latency.as_nanos() / 2),
            ),
        ];
        // A 4-packet pacing chunk: the shared protocol processor
        // interleaves the two directions tightly only at fine grain (its
        // service time is half the wire's).
        Pipeline::with_chunk(&self.sim, stages, c.mtu_payload, 4)
    }

    /// Per-packet wire/header overhead.
    pub fn per_packet_overhead(&self) -> simnet::Bytes {
        self.devices[0].calib.per_packet_overhead_bytes
    }
}

/// Host-local halves of the InfiniBand data path, for endpoint-to-shard
/// placement in sharded cluster runs ([`simnet::shard`]). Split from the
/// monolithic path at the switch hop: `egress` carries the TX stages up to
/// the wire, `ingress` carries this host's switch egress port plus the RX
/// stages, and the Mellanox switch's forwarding delay becomes the
/// cross-shard `wire_latency`. The shared serial protocol processor stays
/// shared: both halves stage through the *same* `engine` pipe, so a host's
/// send and receive directions contend within its shard exactly as in
/// [`IbFabric::data_path`].
pub fn shard_host_path(sim: &Sim, calib: MellanoxCalib) -> simnet::shard::HostPath {
    shard_host_path_at(sim, 0, calib)
}

/// [`shard_host_path`] for an explicit host placement: the HCA is built
/// as node `node`, so multiple hosts materialized on *one* calendar (the
/// open-loop workload engine's client/server pair) get distinct devices
/// with private pipes instead of two aliases of node 0.
pub fn shard_host_path_at(sim: &Sim, node: usize, calib: MellanoxCalib) -> simnet::shard::HostPath {
    let dev = HcaDevice::new(sim, node, calib);
    let c = dev.calib;
    let egress = Pipeline::with_chunk(
        sim,
        vec![
            Stage::new(dev.pcie.to_device_pipe().clone(), c.pcie.dma_latency),
            Stage::new(dev.engine.clone(), c.engine_latency),
            Stage::new(dev.link_tx.clone(), c.link_latency),
        ],
        c.mtu_payload,
        4,
    );
    let cfg = SwitchConfig::mellanox_ib();
    let ingress = Pipeline::with_chunk(
        sim,
        vec![
            Stage::new(
                Pipe::new(sim, cfg.port_bytes_per_sec, SimDuration::ZERO),
                SimDuration::ZERO,
            ),
            Stage::new(dev.engine.clone(), c.engine_latency),
            Stage::new(
                dev.pcie.to_host_pipe().clone(),
                SimDuration::from_nanos(c.pcie.dma_latency.as_nanos() / 2),
            ),
        ],
        c.mtu_payload,
        4,
    );
    simnet::shard::HostPath {
        egress,
        ingress,
        wire_latency: cfg.forwarding_latency,
        overhead_bytes: c.per_packet_overhead_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::sync::join2;

    #[test]
    fn unidirectional_bandwidth_is_link_limited_near_970() {
        let sim = Sim::new();
        let fab = IbFabric::new(&sim, 2);
        let path = fab.data_path(0, 1);
        let ovh = fab.per_packet_overhead();
        let bytes: u64 = 8 << 20;
        sim.block_on(async move { path.transfer(simnet::Bytes::new(bytes), ovh).await });
        let mbps = bytes as f64 / sim.now().as_secs_f64() / 1e6;
        assert!(
            (940.0..1000.0).contains(&mbps),
            "IB unidirectional {mbps:.0} MB/s, want ~970"
        );
    }

    #[test]
    fn bothway_is_processor_limited_near_1780() {
        let sim = Sim::new();
        let fab = IbFabric::new(&sim, 2);
        let p01 = fab.data_path(0, 1);
        let p10 = fab.data_path(1, 0);
        let ovh = fab.per_packet_overhead();
        let bytes: u64 = 8 << 20;
        let h1 = sim.spawn(async move { p01.transfer(simnet::Bytes::new(bytes), ovh).await });
        let h2 = sim.spawn(async move { p10.transfer(simnet::Bytes::new(bytes), ovh).await });
        sim.block_on(async move { join2(h1, h2).await });
        let agg = (2 * bytes) as f64 / sim.now().as_secs_f64() / 1e6;
        assert!(
            (1650.0..1900.0).contains(&agg),
            "IB both-way {agg:.0} MB/s, want ~1780 (89% of 2 GB/s)"
        );
    }

    #[test]
    fn context_cache_hits_within_capacity_misses_beyond() {
        let sim = Sim::new();
        let fab = IbFabric::new(&sim, 2);
        let dev = fab.device(0);
        let cost = SimDuration::from_nanos(100);
        // Warm 8 QPs, then cycle them: all hits.
        sim.block_on({
            let dev = Rc::clone(&dev);
            async move {
                for qpn in 0..8u32 {
                    dev.engine_message(qpn, cost).await;
                }
                let before = dev.context_stats();
                for _round in 0..3 {
                    for qpn in 0..8u32 {
                        dev.engine_message(qpn, cost).await;
                    }
                }
                let after = dev.context_stats();
                assert_eq!(after.1, before.1, "no new misses within capacity");

                // Cycling 16 QPs round-robin misses every time.
                let before = dev.context_stats();
                for _round in 0..2 {
                    for qpn in 100..116u32 {
                        dev.engine_message(qpn, cost).await;
                    }
                }
                let after = dev.context_stats();
                assert_eq!(after.1 - before.1, 32, "every access misses");
            }
        });
    }

    #[test]
    fn context_miss_costs_more_time() {
        let sim = Sim::new();
        let fab = IbFabric::new(&sim, 2);
        let dev = fab.device(0);
        let cost = SimDuration::from_nanos(100);
        let (hit_time, miss_time) = sim.block_on({
            let dev = Rc::clone(&dev);
            let sim = sim.clone();
            async move {
                dev.engine_message(1, cost).await; // warm
                let t0 = sim.now();
                dev.engine_message(1, cost).await; // hit
                let hit = sim.now() - t0;
                // Evict qpn 1 by warming 8 others.
                for q in 10..18 {
                    dev.engine_message(q, cost).await;
                }
                let t0 = sim.now();
                dev.engine_message(1, cost).await; // miss
                (hit, sim.now() - t0)
            }
        });
        assert!(
            miss_time.as_nanos() > hit_time.as_nanos() + 1_000,
            "miss {miss_time} must exceed hit {hit_time} by the penalty"
        );
    }
}
