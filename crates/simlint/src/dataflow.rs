//! Driver for the interprocedural passes: file collection, pass execution,
//! allow-annotation suppression, and the committed-baseline gate.
//!
//! The classic rules in [`crate::rules`] are per-file and run everywhere;
//! the passes driven here ([`crate::taint`], [`crate::fsm`]) are
//! workspace-wide — they need every file at once to resolve calls and to
//! pair fabric machines with oracle tables. `simlint --dataflow` runs both
//! layers and merges the reports.
//!
//! ## Baseline policy
//!
//! Dataflow findings gate CI on *new* findings only: the committed
//! `crates/simlint/dataflow.baseline` holds a fingerprint per accepted
//! pre-existing finding, and [`apply_baseline`] subtracts it (multiset
//! semantics) from a run's findings. Fingerprints are
//! `rule|workspace-relative-path|message` — deliberately no line numbers,
//! and the pass messages are written line-free, so edits above a finding do
//! not churn the baseline. A baseline entry nothing matches is *stale* and
//! fails `--deny-all`: the file shrinks monotonically toward empty, it
//! never rots. Regenerate with `--write-baseline` only when accepting a
//! finding is a deliberate reviewed decision.

use crate::graph::build_index;
use crate::{fsm, parse_allows, taint, Diagnostic};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The interprocedural rules layered on top of [`crate::rules::all_rules`]:
/// `(name, one-line summary)`. These names are valid in
/// `simlint: allow(...)` annotations everywhere.
pub const DATAFLOW_RULES: &[(&str, &str)] = &[
    (
        "taint-through-call",
        "nondeterminism source reaches a simulation sink through function calls",
    ),
    (
        "panic-path",
        "bare unwrap() reachable from a fabric transfer hot path",
    ),
    (
        "fsm-drift",
        "fabric state machine and simcheck oracle transition table disagree",
    ),
];

/// True when `name` is one of the dataflow-layer rules.
pub fn is_dataflow_rule(name: &str) -> bool {
    DATAFLOW_RULES.iter().any(|(n, _)| *n == name)
}

/// Default baseline location, workspace-relative.
pub const BASELINE_PATH: &str = "crates/simlint/dataflow.baseline";

/// Extra directories the dataflow passes read beyond [`crate::SIM_SCOPE`]:
/// `simcheck` for the exported FSM tables, `bench` so a wall-clock helper
/// there still taints sim-scope callers (sinks are only *reported* in sim
/// scope — bench times figure generation by design).
const EXTRA_SCOPE: &[&str] = &["crates/simcheck/src", "crates/bench/src"];

/// Collect `(path, source)` for every file the dataflow passes analyze.
pub fn dataflow_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut paths = crate::workspace_files(root)?;
    for dir in EXTRA_SCOPE {
        let base = root.join(dir);
        if base.is_dir() {
            let mut extra = Vec::new();
            collect(&base, &mut extra)?;
            paths.append(&mut extra);
        }
    }
    paths.sort();
    paths.dedup();
    paths
        .into_iter()
        .map(|p| std::fs::read_to_string(&p).map(|src| (p, src)))
        .collect()
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of one dataflow run: surviving findings plus what allows ate.
pub struct DataflowOutcome {
    pub diags: Vec<Diagnostic>,
    pub suppressed: Vec<Diagnostic>,
}

/// Run taint + panic + FSM passes over `files` and apply in-place
/// `simlint: allow` suppressions.
///
/// Engine diagnostics from allow parsing (`malformed-allow`,
/// `unknown-rule`) are *dropped* here — the classic per-file pass already
/// reports each bad directive once, and re-reporting per layer is exactly
/// the duplication the combined mode must avoid. `unused-allow` is emitted
/// here only for annotations that name *exclusively* dataflow rules, which
/// the classic pass correspondingly skips.
pub fn run_dataflow(root: &Path, files: &[(PathBuf, String)]) -> DataflowOutcome {
    let mut found = Vec::new();
    let index = build_index(files, &mut Vec::new());
    taint::taint_pass(root, &index, &mut found);
    taint::panic_pass(root, &index, &mut found);
    fsm::fsm_pass(root, files, &mut found);
    found.sort();
    found.dedup();

    // Known-rule list for allow parsing: classic + dataflow + units names,
    // so a mixed annotation parses identically in every layer.
    let mut known: Vec<&'static str> = crate::rules::all_rules().iter().map(|r| r.name()).collect();
    known.extend(DATAFLOW_RULES.iter().map(|(n, _)| *n));
    known.extend(crate::units::UNITS_RULES.iter().map(|(n, _)| *n));

    let mut diags = Vec::new();
    let mut suppressed = Vec::new();
    let mut by_file: BTreeMap<PathBuf, Vec<Diagnostic>> = BTreeMap::new();
    for d in found {
        by_file.entry(d.file.clone()).or_default().push(d);
    }
    for (path, src) in files {
        let mut allows = parse_allows(path, src, &known, &mut Vec::new());
        for d in by_file.remove(path).unwrap_or_default() {
            let hit = allows.iter_mut().any(|a| {
                let hit = a.target_line == d.line && a.rules.iter().any(|r| r == d.rule);
                if hit {
                    a.used = true;
                }
                hit
            });
            if hit {
                suppressed.push(d);
            } else {
                diags.push(d);
            }
        }
        for a in &allows {
            if !a.used && a.rules.iter().all(|r| is_dataflow_rule(r)) {
                diags.push(Diagnostic {
                    file: path.clone(),
                    line: a.decl_line,
                    column: 0,
                    rule: "unused-allow",
                    message: format!(
                        "allow({}) suppresses nothing on line {}; remove the stale annotation",
                        a.rules.join(", "),
                        a.target_line
                    ),
                });
            }
        }
    }
    // Findings in files outside the analyzed list (can only happen for
    // synthetic anchors like a missing-table drift) pass through unfiltered.
    for (_, rest) in by_file {
        diags.extend(rest);
    }
    diags.sort();
    suppressed.sort();
    DataflowOutcome { diags, suppressed }
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Stable fingerprint of one finding: `rule|workspace-relative-path|message`.
pub fn fingerprint(root: &Path, d: &Diagnostic) -> String {
    let rel = d.file.strip_prefix(root).unwrap_or(&d.file);
    format!("{}|{}|{}", d.rule, rel.display(), d.message)
}

/// Render a baseline file for the given findings: header plus one sorted
/// fingerprint per line. Byte-deterministic for identical findings.
pub fn render_baseline(root: &Path, diags: &[Diagnostic]) -> String {
    let mut lines: Vec<String> = diags.iter().map(|d| fingerprint(root, d)).collect();
    lines.sort();
    let mut out = String::from(
        "# simlint dataflow baseline — accepted pre-existing findings.\n\
         # One `rule|path|message` fingerprint per line (no line numbers: see\n\
         # DESIGN.md §11). Regenerate with `simlint --dataflow --write-baseline`\n\
         # only as a deliberate, reviewed acceptance.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Parse a baseline file into its fingerprint list (comments/blanks skipped).
pub fn parse_baseline(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Subtract the baseline from `diags` with multiset semantics. Returns
/// `(new_findings, matched_count, stale_entries)`: findings not covered by
/// the baseline, how many were covered, and baseline entries that matched
/// nothing (stale — the finding was fixed, shrink the file).
pub fn apply_baseline(
    root: &Path,
    diags: Vec<Diagnostic>,
    baseline: &[String],
) -> (Vec<Diagnostic>, usize, Vec<String>) {
    let mut budget: BTreeMap<&str, usize> = BTreeMap::new();
    for fp in baseline {
        *budget.entry(fp.as_str()).or_default() += 1;
    }
    let mut fresh = Vec::new();
    let mut matched = 0usize;
    for d in diags {
        let fp = fingerprint(root, &d);
        match budget.get_mut(fp.as_str()) {
            Some(n) if *n > 0 => {
                *n -= 1;
                matched += 1;
            }
            _ => fresh.push(d),
        }
    }
    let mut stale: Vec<String> = budget
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .flat_map(|(fp, n)| std::iter::repeat_n(fp.to_owned(), n))
        .collect();
    stale.sort();
    (fresh, matched, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, msg: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line: 3,
            column: 0,
            rule,
            message: msg.to_owned(),
        }
    }

    #[test]
    fn baseline_roundtrip_and_multiset_matching() {
        let root = Path::new("/ws");
        let d1 = diag("panic-path", "/ws/crates/iwarp/src/a.rs", "m1");
        let d2 = diag("panic-path", "/ws/crates/iwarp/src/a.rs", "m1");
        let d3 = diag("fsm-drift", "/ws/crates/simcheck/src/ib.rs", "m2");
        let text = render_baseline(root, &[d1.clone(), d2.clone()]);
        let base = parse_baseline(&text);
        assert_eq!(base.len(), 2, "duplicate fingerprints kept as multiset");

        let (fresh, matched, stale) = apply_baseline(root, vec![d1, d2, d3], &base);
        assert_eq!(matched, 2);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "fsm-drift");
        assert!(stale.is_empty());

        let (fresh2, matched2, stale2) = apply_baseline(root, Vec::new(), &base);
        assert!(fresh2.is_empty());
        assert_eq!(matched2, 0);
        assert_eq!(stale2.len(), 2, "unmatched entries are stale");
    }

    #[test]
    fn allow_suppresses_dataflow_finding_and_stale_allow_reports() {
        let files = vec![
            (
                PathBuf::from("crates/simnet/src/a.rs"),
                "fn hot(sim: &Sim) {\n\
                 \x20   let t = stamp();\n\
                 \x20   sim.sleep(t); // simlint: allow(taint-through-call) -- fixture\n\
                 }\n\
                 // simlint: allow(panic-path) -- nothing here\n\
                 fn calm() {}\n"
                    .to_owned(),
            ),
            (
                PathBuf::from("crates/simnet/src/b.rs"),
                "fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n".to_owned(),
            ),
        ];
        let out = run_dataflow(Path::new(""), &files);
        assert_eq!(out.suppressed.len(), 1, "{:?}", out.suppressed);
        assert_eq!(out.suppressed[0].rule, "taint-through-call");
        let rules: Vec<&str> = out.diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, ["unused-allow"], "{:?}", out.diags);
    }
}
