//! Pass 2a/2b of the dataflow engine: interprocedural nondeterminism taint
//! and the hot-path panic audit, both over the [`crate::graph::Index`].
//!
//! **Taint** (`taint-through-call`): a function is *tainted* when its body
//! reads a nondeterminism source directly, or when it calls a tainted
//! function. Propagation is a fixed-point worklist over reversed call
//! edges — monotone (taint only ever grows) over a finite lattice, so it
//! terminates even through recursion and call cycles. A finding is emitted
//! for every *sink* site inside a tainted function whose file lies in
//! [`crate::SIM_SCOPE`]; the message carries the shortest witness chain
//! from the sink's function back to a source so the report reads as a
//! story, not a flag.
//!
//! **Panic paths** (`panic-path`): breadth-first reachability from the
//! fabric transfer entry points ([`crate::graph::HOT_PATH_ENTRIES`]) along
//! forward call edges; every `.unwrap()` in a reached sim-scope function is
//! flagged with its shortest entry chain. The fix is mechanical — state the
//! invariant in an `expect`, or justify with an allow — which is exactly
//! why it belongs in a lint and not in review comments.
//!
//! Messages deliberately contain **no line numbers**: they are baseline
//! fingerprint material (see DESIGN.md §11), and a message that shifts with
//! every unrelated edit above it would churn the committed baseline.

use crate::graph::{FnNode, Index, HOT_PATH_ENTRIES};
use crate::{Diagnostic, SIM_SCOPE};

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

/// True when `file` lives under one of the sim-scope directories of `root`.
/// Files outside the workspace root (virtual fixture paths in tests) are
/// matched on their relative shape instead.
fn in_sim_scope(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    SIM_SCOPE.iter().any(|dir| rel.starts_with(dir))
}

/// Workspace-relative display path for messages and fingerprints.
fn rel_display(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .display()
        .to_string()
}

/// Per-function taint fact: how the taint got here.
#[derive(Debug, Clone)]
struct TaintFact {
    /// The original source description (e.g. "wall-clock read (`Instant`)").
    source: String,
    /// Call chain from this function down to the source's function,
    /// innermost last: `["transfer", "stamp"]` means `transfer` calls
    /// `stamp`, which reads the source.
    chain: Vec<String>,
}

/// Run the interprocedural taint pass; append findings to `diags`.
pub fn taint_pass(root: &Path, index: &Index, diags: &mut Vec<Diagnostic>) {
    // Fact per function index; first fact wins (BFS order ⇒ shortest chain).
    let mut facts: BTreeMap<usize, TaintFact> = BTreeMap::new();
    let mut worklist: VecDeque<usize> = VecDeque::new();

    for (i, f) in index.fns.iter().enumerate() {
        if let Some(src) = f.sources.first() {
            facts.insert(
                i,
                TaintFact {
                    source: src.what.clone(),
                    chain: vec![f.name.clone()],
                },
            );
            worklist.push_back(i);
        }
    }

    // Reverse edges: callee index → caller indices. Built once; name-keyed
    // resolution means one call site may fan out to several definitions.
    let mut callers: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, f) in index.fns.iter().enumerate() {
        for call in &f.calls {
            for &def in index.defs(&call.callee) {
                callers.entry(def).or_default().push(i);
            }
        }
    }

    while let Some(i) = worklist.pop_front() {
        let fact = facts[&i].clone();
        for &caller in callers.get(&i).map_or(&[][..], Vec::as_slice) {
            if facts.contains_key(&caller) {
                continue; // already tainted: fixed point for this node
            }
            let mut chain = vec![index.fns[caller].name.clone()];
            chain.extend(fact.chain.iter().cloned());
            facts.insert(
                caller,
                TaintFact {
                    source: fact.source.clone(),
                    chain,
                },
            );
            worklist.push_back(caller);
        }
    }

    for (i, f) in index.fns.iter().enumerate() {
        let Some(fact) = facts.get(&i) else { continue };
        if f.sinks.is_empty() || !in_sim_scope(root, &f.file) {
            continue;
        }
        let via = if fact.chain.len() > 1 {
            format!(" via `{}`", fact.chain.join("` -> `"))
        } else {
            String::new()
        };
        for sink in &f.sinks {
            diags.push(Diagnostic {
                file: f.file.clone(),
                line: sink.line,
                column: sink.column,
                rule: "taint-through-call",
                message: format!(
                    "{} reaches {} in `{}` ({}){}",
                    fact.source,
                    sink.what,
                    f.name,
                    rel_display(root, &f.file),
                    via
                ),
            });
        }
    }
}

/// Run the hot-path panic audit; append findings to `diags`.
pub fn panic_pass(root: &Path, index: &Index, diags: &mut Vec<Diagnostic>) {
    // BFS from every hot-path entry simultaneously; `parent` reconstructs
    // one shortest chain entry → function for the message.
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for entry in HOT_PATH_ENTRIES {
        for &i in index.defs(entry) {
            // Entry points only count where the fabric lives: a fixture or
            // bench helper named `transfer` must not seed the walk.
            if in_sim_scope(root, &index.fns[i].file) && !parent.contains_key(&i) {
                parent.insert(i, None);
                queue.push_back(i);
            }
        }
    }
    while let Some(i) = queue.pop_front() {
        for call in &index.fns[i].calls {
            for &def in index.defs(&call.callee) {
                if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(def) {
                    slot.insert(Some(i));
                    queue.push_back(def);
                }
            }
        }
    }

    for &i in parent.keys() {
        let f: &FnNode = &index.fns[i];
        if f.unwraps.is_empty() || !in_sim_scope(root, &f.file) {
            continue;
        }
        let chain = chain_to(index, &parent, i);
        let via = if chain.len() > 1 {
            format!(" (reached via `{}`)", chain.join("` -> `"))
        } else {
            String::new()
        };
        for u in &f.unwraps {
            diags.push(Diagnostic {
                file: f.file.clone(),
                line: u.line,
                column: u.column,
                rule: "panic-path",
                message: format!(
                    "bare `.unwrap()` in `{}` ({}) is reachable from a fabric transfer \
                     hot path{}; state the invariant with `.expect(\"..\")` or justify \
                     with `simlint: allow(panic-path) -- reason`",
                    f.name,
                    rel_display(root, &f.file),
                    via
                ),
            });
        }
    }
}

/// Reconstruct the entry → `i` call chain from BFS parents, outermost first.
fn chain_to(index: &Index, parent: &BTreeMap<usize, Option<usize>>, i: usize) -> Vec<String> {
    let mut chain = vec![index.fns[i].name.clone()];
    let mut cur = i;
    while let Some(Some(p)) = parent.get(&cur) {
        chain.push(index.fns[*p].name.clone());
        cur = *p;
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_index;
    use std::path::PathBuf;

    fn run_taint(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let owned: Vec<(PathBuf, String)> = files
            .iter()
            .map(|(p, s)| (PathBuf::from(p), (*s).to_owned()))
            .collect();
        let mut diags = Vec::new();
        let index = build_index(&owned, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        taint_pass(Path::new(""), &index, &mut diags);
        diags
    }

    #[test]
    fn taint_crosses_one_call_indirection() {
        let diags = run_taint(&[
            (
                "crates/simnet/src/a.rs",
                "fn hot(sim: &Sim) { let t = stamp(); sim.sleep(t); }\n",
            ),
            (
                "crates/simnet/src/b.rs",
                "fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "taint-through-call");
        assert!(
            diags[0].message.contains("`hot` -> `stamp`"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn taint_fixed_point_terminates_on_mutual_recursion() {
        let diags = run_taint(&[(
            "crates/simnet/src/r.rs",
            "fn ping(sim: &Sim) { pong(sim); sim.spawn(f); }\n\
             fn pong(sim: &Sim) { ping(sim); }\n\
             fn seed() -> u32 { getrandom() }\n\
             fn root(sim: &Sim) { seed(); ping(sim); }\n",
        )]);
        // `ping` has the only sink; it is tainted via root? No — taint flows
        // callee → caller, and ping never *calls* a tainted fn (seed is
        // called by root, not by ping). So no findings, and no hang.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn taint_through_cycle_reaches_sink() {
        let diags = run_taint(&[(
            "crates/simnet/src/c.rs",
            "fn a(sim: &Sim) { b(sim); sim.spawn(f); }\n\
             fn b(sim: &Sim) { a(sim); c(); }\n\
             fn c() -> u32 { getrandom() }\n",
        )]);
        // a -> b -> c(source); a holds the sink.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("getrandom"));
    }

    #[test]
    fn sinks_outside_sim_scope_are_ignored() {
        let diags = run_taint(&[(
            "crates/bench/src/main.rs",
            "fn timed(sim: &Sim) { let t = Instant::now(); sim.sleep(t); }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn panic_path_flags_reachable_unwrap_only() {
        let files: Vec<(PathBuf, String)> = vec![(
            PathBuf::from("crates/iwarp/src/x.rs"),
            "fn transfer(&self) { deliver(self); }\n\
                 fn deliver(x: &X) { x.q.pop().unwrap(); }\n\
                 fn unrelated(x: &X) { x.q.pop().unwrap(); }\n"
                .to_owned(),
        )];
        let mut diags = Vec::new();
        let index = build_index(&files, &mut diags);
        panic_pass(Path::new(""), &index, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-path");
        assert!(
            diags[0].message.contains("`transfer` -> `deliver`"),
            "{}",
            diags[0].message
        );
    }
}
