//! SARIF 2.1.0 rendering of simlint diagnostics.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format code-scanning UIs ingest; emitting it makes
//! the determinism lints show up inline on review diffs instead of only in
//! a CI log. The emitter here is deliberately minimal and hand-rolled (no
//! serde in this workspace): one `run`, the rule catalog under
//! `tool.driver.rules`, one `result` per diagnostic with a single physical
//! location. Output is deterministic — rules sorted by id, results in the
//! engine's sorted diagnostic order — so the CI artifact diffs cleanly
//! across runs.

use crate::{json_escape, Diagnostic};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Render `diags` as a complete SARIF 2.1.0 log. `rule_summaries` maps rule
/// id → one-line description for the rule catalog (rules that appear in
/// `diags` but not in the map still get a catalog stub). File URIs are
/// rendered relative to `root`.
pub fn to_sarif(
    root: &Path,
    diags: &[Diagnostic],
    rule_summaries: &BTreeMap<&'static str, &'static str>,
) -> String {
    // Catalog: every known rule, plus any rule a diagnostic references.
    let mut catalog: BTreeMap<&str, &str> = BTreeMap::new();
    for (id, summary) in rule_summaries {
        catalog.insert(id, summary);
    }
    for d in diags {
        catalog.entry(d.rule).or_insert("engine diagnostic");
    }
    let rule_index: BTreeMap<&str, usize> =
        catalog.keys().enumerate().map(|(i, id)| (*id, i)).collect();

    let mut out = String::new();
    out.push_str(
        "{\n  \"$schema\": \
         \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n\
         \x20 \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n\
         \x20         \"name\": \"simlint\",\n          \"informationUri\": \"DESIGN.md\",\n\
         \x20         \"rules\": [\n",
    );
    for (i, (id, summary)) in catalog.iter().enumerate() {
        let comma = if i + 1 < catalog.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}",
            json_escape(id),
            json_escape(summary),
            comma
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let uri = d
            .file
            .strip_prefix(root)
            .unwrap_or(&d.file)
            .display()
            .to_string()
            .replace('\\', "/");
        let comma = if i + 1 < diags.len() { "," } else { "" };
        // SARIF columns are 1-based; Diagnostic columns are 0-based.
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \
             \"startColumn\": {}}}}}}}]}}{}",
            json_escape(d.rule),
            rule_index[d.rule],
            json_escape(&d.message),
            json_escape(&uri),
            d.line,
            d.column + 1,
            comma
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn sarif_log_is_wellformed_and_relative() {
        let diags = vec![Diagnostic {
            file: PathBuf::from("/ws/crates/simnet/src/pipe.rs"),
            line: 7,
            column: 4,
            rule: "taint-through-call",
            message: "wall-clock reaches `.sleep(..)`".to_owned(),
        }];
        let mut summaries = BTreeMap::new();
        summaries.insert("taint-through-call", "interprocedural nondeterminism taint");
        let sarif = to_sarif(Path::new("/ws"), &diags, &summaries);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"uri\": \"crates/simnet/src/pipe.rs\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("\"startColumn\": 5"), "1-based columns");
        assert!(sarif.contains("\"id\": \"taint-through-call\""));
        // Balanced braces/brackets — cheap well-formedness proxy given no
        // JSON parser in-tree.
        let open = sarif.matches('{').count();
        let close = sarif.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    }

    #[test]
    fn empty_run_has_empty_results() {
        let sarif = to_sarif(Path::new("/ws"), &[], &BTreeMap::new());
        assert!(sarif.contains("\"results\": [\n      ]"));
    }
}
