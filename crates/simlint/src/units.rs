//! Pass 2c of the dataflow engine: dimensional abstract interpretation
//! (`--units`).
//!
//! The typed quantities in `simnet` (`Bytes`, `ByteRate`, `SimDuration`)
//! make most dimension errors unrepresentable at compile time, but the
//! models still carry raw `u64`s at their edges — counters, wire formats,
//! calibration plumbing — and a `bytes + nanos` slip there compiles fine
//! and silently bends a figure. This pass runs a small abstract
//! interpreter over every production function: each expression is mapped
//! to a point on the dimension lattice
//!
//! ```text
//!           Conflict
//!          /    |    \
//!        Ns   Bytes  Rate     Count / Dimensionless
//!          \    |    /
//!           Unknown
//! ```
//!
//! seeded from declared types (`Bytes`, `ByteRate`, `SimDuration`,
//! `SimTime`), from the blessed constructors
//! (`SimDuration::from_nanos(..)`, `Bytes::new(..)`,
//! `ByteRate::from_gbps(..)`, …), and — for raw integers only — from the
//! workspace naming convention (`bytes`/`*_bytes` → bytes,
//! `*_bytes_per_sec` → rate, `*_ns`/`*_nanos` → nanoseconds). Dimensions
//! propagate through local `let` bindings, across call arguments into
//! parameter positions, and interprocedurally: a fixed-point worklist over
//! function signatures lifts a callee's parameter dimension back into any
//! caller that forwards one of its own parameters verbatim, so the witness
//! chain in a finding can cross crates (`via `send_msg` -> `transfer` ->
//! `serialize``).
//!
//! Four rules:
//!
//! * **`unit-mismatch`** — `+`/`-` between two different dimensions, or a
//!   dimensioned argument flowing into a parameter of a *different*
//!   dimension (the classic swapped-argument bug).
//! * **`unit-arith`** — `*`/`/` combinations with no physical meaning:
//!   `ns * ns`, `bytes * rate`, `rate / bytes`, … The legal algebra is
//!   exactly the operator set the `simnet` newtypes implement:
//!   `bytes / rate → ns`, `rate * ns → bytes`, `x / x → count`, and
//!   scalars compose with everything.
//! * **`raw-quantity`** — a bare integer literal passed where a
//!   dimensioned parameter is declared. Blessed constructors are exempt:
//!   `Bytes::new(1448)` is the fix, not the bug.
//! * **`lossy-time-cast`** — a nanosecond quantity cast `as` a type that
//!   cannot hold it (`u32` overflows after 4.3 seconds of simulated
//!   time).
//!
//! Like the taint pass, messages are **line-free** so they stay stable as
//! baseline fingerprints (DESIGN.md §12); the diagnostic itself still
//! carries the line/column anchor.

use crate::{Diagnostic, FlatTok, SIM_SCOPE};

use proc_macro2::Delimiter;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The units-layer rules: `(name, one-line summary)`. Valid in
/// `simlint: allow(...)` annotations everywhere.
pub const UNITS_RULES: &[(&str, &str)] = &[
    (
        "unit-mismatch",
        "quantities of different dimensions added, subtracted, or passed for one another",
    ),
    (
        "unit-arith",
        "multiplication or division with no physical meaning (ns*ns, bytes*rate, ...)",
    ),
    (
        "raw-quantity",
        "bare integer literal passed where a dimensioned parameter is declared",
    ),
    (
        "lossy-time-cast",
        "nanosecond quantity cast to a type too narrow to hold simulated time",
    ),
];

/// True when `name` is one of the units-layer rules.
pub fn is_units_rule(name: &str) -> bool {
    UNITS_RULES.iter().any(|(n, _)| *n == name)
}

/// Default committed baseline location, workspace-relative.
pub const UNITS_BASELINE_PATH: &str = "crates/simlint/units.baseline";

// ---------------------------------------------------------------------------
// Dimension lattice
// ---------------------------------------------------------------------------

/// A point on the dimension lattice. `Count` is a number *of* things
/// (segments, retries — the result of `x / x`); `Dimensionless` is a bare
/// numeric literal before context assigns it a meaning. Both compose with
/// every dimension as scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    Unknown,
    Ns,
    Bytes,
    Rate,
    Count,
    Dimensionless,
    Conflict,
}

impl Dim {
    /// True for the physically dimensioned points (the ones worth
    /// defending).
    fn is_dimensioned(self) -> bool {
        matches!(self, Dim::Ns | Dim::Bytes | Dim::Rate)
    }

    /// True for scalar points that compose with anything.
    fn is_scalar(self) -> bool {
        matches!(self, Dim::Count | Dim::Dimensionless)
    }

    fn describe(self) -> &'static str {
        match self {
            Dim::Ns => "nanoseconds",
            Dim::Bytes => "bytes",
            Dim::Rate => "bytes/sec",
            Dim::Count => "count",
            Dim::Dimensionless => "dimensionless",
            Dim::Unknown => "unknown",
            Dim::Conflict => "conflicting",
        }
    }
}

// ---------------------------------------------------------------------------
// Signatures
// ---------------------------------------------------------------------------

/// One parameter of an indexed function: its declared/inferred dimension
/// and — when the dimension arrived interprocedurally — the call chain
/// that justifies it (innermost callee last).
#[derive(Debug, Clone)]
struct Param {
    name: String,
    dim: Dim,
    /// Witness: `["transfer", "serialize"]` means this parameter flows
    /// into `transfer`, which forwards it to `serialize`, where the
    /// dimension is declared.
    chain: Vec<String>,
}

/// A function signature plus its body tokens, the unit pass's working
/// granularity.
#[derive(Debug, Clone)]
struct UnitFn {
    name: String,
    file: PathBuf,
    /// True when the first parameter is a `self` receiver (method-call
    /// argument positions then map to `params[1..]`).
    has_self: bool,
    params: Vec<Param>,
    ret: Dim,
    /// Flattened tokens of the body block (inside the outer braces).
    body: Vec<FlatTok>,
}

/// Name → indices into the function table (name-keyed resolution, same
/// over-approximation as [`crate::graph`]).
#[derive(Debug, Default)]
struct Sigs {
    fns: Vec<UnitFn>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Sigs {
    fn defs(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Dimension of parameter `pos` (0-based over the *argument* list, so
    /// receivers are already skipped) when **all** definitions of `name`
    /// that have such a parameter agree; `Unknown` otherwise. Name-keyed
    /// resolution makes agreement the only sound polarity for reporting.
    fn param_dim(&self, name: &str, pos: usize, method_call: bool) -> (Dim, Vec<String>, String) {
        let mut dim = Dim::Unknown;
        let mut chain = Vec::new();
        let mut pname = String::new();
        for &i in self.defs(name) {
            let f = &self.fns[i];
            let skip = usize::from(f.has_self && method_call);
            let Some(p) = f.params.get(pos + skip) else {
                continue;
            };
            if p.dim == Dim::Unknown {
                continue;
            }
            if dim == Dim::Unknown {
                dim = p.dim;
                chain = p.chain.clone();
                pname = p.name.clone();
            } else if dim != p.dim {
                return (Dim::Unknown, Vec::new(), String::new());
            }
        }
        (dim, chain, pname)
    }

    /// Return dimension when all definitions of `name` agree.
    fn ret_dim(&self, name: &str) -> Dim {
        let mut dim = Dim::Unknown;
        for &i in self.defs(name) {
            let r = self.fns[i].ret;
            if r == Dim::Unknown {
                continue;
            }
            if dim == Dim::Unknown {
                dim = r;
            } else if dim != r {
                return Dim::Unknown;
            }
        }
        dim
    }
}

/// Types whose appearance in a parameter/return position declares a
/// dimension outright.
fn dim_of_type(toks: &[FlatTok]) -> Dim {
    for t in toks {
        if let FlatTok::Ident(name, _) = t {
            match name.as_str() {
                "Bytes" => return Dim::Bytes,
                "ByteRate" => return Dim::Rate,
                "SimDuration" | "SimTime" => return Dim::Ns,
                _ => {}
            }
        }
    }
    Dim::Unknown
}

/// True when the type slice is a raw integer (the only types the naming
/// convention may dimension — a `String` named `bytes` stays unknown).
fn is_integer_type(toks: &[FlatTok]) -> bool {
    toks.iter().any(|t| {
        matches!(t, FlatTok::Ident(n, _)
            if matches!(n.as_str(), "u8" | "u16" | "u32" | "u64" | "u128" | "usize"
                | "i8" | "i16" | "i32" | "i64" | "i128" | "isize"))
    })
}

/// Naming-convention fallback for raw-integer identifiers. Deliberately
/// narrow: exact `bytes`, the `_bytes` / `bytes_per_sec` / `_ns` /
/// `_nanos` suffixes. (`*_overhead` is *not* seeded — `packet_overhead`
/// is a byte count in one fabric and an occupancy duration in another.)
fn dim_of_name(name: &str) -> Dim {
    if name == "bytes" || name.ends_with("_bytes") {
        Dim::Bytes
    } else if name.ends_with("bytes_per_sec") {
        Dim::Rate
    } else if name == "ns" || name.ends_with("_ns") || name.ends_with("_nanos") {
        Dim::Ns
    } else {
        Dim::Unknown
    }
}

/// Blessed constructors: the sanctioned literal → dimension entry points.
/// A raw literal inside these is the fix for `raw-quantity`, never the
/// finding.
const BLESSED_CTORS: &[&str] = &[
    "new",
    "from_nanos",
    "from_micros",
    "from_millis",
    "from_secs",
    "from_secs_f64",
    "from_micros_f64",
    "from_bytes_per_sec",
    "from_gbps",
    "from_kib",
    "from_mib",
];

/// `Type::method` constructor paths that *produce* a dimension.
fn ctor_dim(ty: &str, method: &str) -> Option<Dim> {
    match (ty, method) {
        ("SimDuration" | "SimTime", _) if method.starts_with("from_") => Some(Dim::Ns),
        ("SimDuration" | "SimTime", "ZERO" | "MAX") => Some(Dim::Ns),
        ("SimDuration", "serialize") => Some(Dim::Ns),
        ("Bytes", "new" | "from_kib" | "from_mib" | "ZERO" | "MAX") => Some(Dim::Bytes),
        ("ByteRate", _) if method.starts_with("from_") => Some(Dim::Rate),
        _ => None,
    }
}

/// Foreign-method dimension transforms, applied when the callee is not in
/// the index (std / vendored / accessor methods). `Keep` preserves the
/// receiver's dimension.
enum MethodEffect {
    Keep,
    Becomes(Dim),
}

fn method_effect(name: &str) -> Option<MethodEffect> {
    match name {
        // Accessors that unwrap the newtype but not the meaning.
        "get" | "as_nanos" | "as_bytes_per_sec" => Some(MethodEffect::Keep),
        "min" | "max" | "clamp" | "clone" | "saturating_add" | "saturating_sub"
        | "saturating_mul" | "checked_add" | "checked_sub" | "unwrap" | "unwrap_or"
        | "unwrap_or_default" | "expect" | "abs" | "await" => Some(MethodEffect::Keep),
        // Ratios collapse to counts.
        "div_ceil" | "len" | "count" => Some(MethodEffect::Becomes(Dim::Count)),
        "is_zero" | "is_empty" => Some(MethodEffect::Becomes(Dim::Unknown)),
        _ => None,
    }
}

/// Casting a nanosecond quantity into these loses simulated time on the
/// floor: `u32` wraps after ~4.3 s, `f32` quantizes past ~16.7 ms.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

// ---------------------------------------------------------------------------
// Signature extraction
// ---------------------------------------------------------------------------

/// Build the signature table over `(path, source)` pairs. Walks the same
/// item tree as [`crate::graph::build_index`] and skips the same test
/// items.
fn build_sigs(files: &[(PathBuf, String)]) -> Sigs {
    let mut sigs = Sigs::default();
    for (path, src) in files {
        let Ok(ast) = syn::parse_file(src) else {
            continue; // parse errors are the classic pass's report
        };
        for item in &ast.items {
            sig_item(path, item, &mut sigs);
        }
    }
    for (i, f) in sigs.fns.iter().enumerate() {
        sigs.by_name.entry(f.name.clone()).or_default().push(i);
    }
    sigs
}

fn sig_item(file: &Path, item: &syn::Item, sigs: &mut Sigs) {
    if is_test_item(item) {
        return;
    }
    match item.kind {
        syn::ItemKind::Fn => {
            if let Some(ident) = &item.ident {
                let mut flat = Vec::new();
                crate::flatten(&item.tokens, &mut flat);
                if let Some(f) = parse_fn(file, ident.to_string(), &flat) {
                    sigs.fns.push(f);
                }
            }
        }
        syn::ItemKind::Mod | syn::ItemKind::Impl | syn::ItemKind::Trait => {
            for sub in &item.sub_items {
                sig_item(file, sub, sigs);
            }
        }
        _ => {}
    }
}

/// True for `#[cfg(test)]` items and `mod tests` bodies (mirrors
/// [`crate::graph`]; tests wrap literals deliberately).
fn is_test_item(item: &syn::Item) -> bool {
    if item.kind == syn::ItemKind::Mod && item.ident.as_ref().is_some_and(|i| *i == "tests") {
        return true;
    }
    let mut flat = Vec::new();
    crate::flatten(&item.tokens, &mut flat);
    let mut i = 0;
    while i + 1 < flat.len() {
        if flat[i].is_punct('#') {
            if let FlatTok::Open(Delimiter::Bracket, _) = flat[i + 1] {
                let end = crate::skip_group(&flat, i + 1);
                if flat[i + 2..end].iter().any(|t| t.is_ident("test")) {
                    return true;
                }
                i = end;
                continue;
            }
        }
        break;
    }
    false
}

/// Parse one function item's flattened tokens into a [`UnitFn`]:
/// `fn name ( params ) -> Ret { body }` with generics/attributes skipped.
fn parse_fn(file: &Path, name: String, flat: &[FlatTok]) -> Option<UnitFn> {
    // Locate `fn <name>` then its parameter parenthesis (generics between
    // name and `(` are skipped by scanning for the first paren group).
    let fn_at = flat
        .iter()
        .position(|t| t.is_ident("fn"))
        .filter(|&i| flat.get(i + 1).is_some_and(|t| t.is_ident(&name)))?;
    let mut i = fn_at + 2;
    while i < flat.len() && !matches!(flat[i], FlatTok::Open(Delimiter::Parenthesis, _)) {
        if let FlatTok::Open(..) = flat[i] {
            i = crate::skip_group(flat, i);
        } else {
            i += 1;
        }
    }
    if i >= flat.len() {
        return None;
    }
    let params_end = crate::skip_group(flat, i);
    let param_toks = &flat[i + 1..params_end - 1];
    let (params, has_self) = parse_params(param_toks);

    // Return type: `-> Type` between the param list and the body brace.
    let mut ret = Dim::Unknown;
    let mut j = params_end;
    let mut body = Vec::new();
    while j < flat.len() {
        match &flat[j] {
            FlatTok::Punct('-', _) if flat.get(j + 1).is_some_and(|t| t.is_punct('>')) => {
                let mut k = j + 2;
                let mut ty = Vec::new();
                while k < flat.len() && !matches!(flat[k], FlatTok::Open(Delimiter::Brace, _)) {
                    ty.push(flat[k].clone());
                    if let FlatTok::Open(..) = flat[k] {
                        k = crate::skip_group(flat, k);
                    } else {
                        k += 1;
                    }
                }
                ret = dim_of_type(&ty);
                j = k;
            }
            FlatTok::Open(Delimiter::Brace, _) => {
                let end = crate::skip_group(flat, j);
                body = flat[j + 1..end - 1].to_vec();
                break;
            }
            _ => j += 1,
        }
    }

    Some(UnitFn {
        name,
        file: file.to_owned(),
        has_self,
        params,
        ret,
        body,
    })
}

/// Split the parameter list at top-level commas into `(name, dim)` pairs.
fn parse_params(toks: &[FlatTok]) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    for piece in split_top_level(toks, ',') {
        // Receiver forms: `self`, `&self`, `&mut self`, `mut self`.
        if piece.iter().any(|t| t.is_ident("self")) && !piece.iter().any(|t| t.is_punct(':')) {
            has_self = true;
            params.push(Param {
                name: "self".to_owned(),
                dim: Dim::Unknown,
                chain: Vec::new(),
            });
            continue;
        }
        // `name : Type` — skip leading `mut`/`ref`/pattern noise.
        let Some(colon) = piece.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        let Some(FlatTok::Ident(pname, _)) = piece[..colon]
            .iter()
            .rev()
            .find(|t| matches!(t, FlatTok::Ident(..)))
        else {
            continue;
        };
        let ty = &piece[colon + 1..];
        let mut dim = dim_of_type(ty);
        if dim == Dim::Unknown && is_integer_type(ty) {
            dim = dim_of_name(pname);
        }
        params.push(Param {
            name: pname.clone(),
            dim,
            chain: Vec::new(),
        });
    }
    (params, has_self)
}

/// Split a token slice at top-level occurrences of `sep`.
fn split_top_level(toks: &[FlatTok], sep: char) -> Vec<Vec<FlatTok>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            FlatTok::Open(..) => {
                let end = crate::skip_group(toks, i);
                cur.extend_from_slice(&toks[i..end]);
                i = end;
            }
            t if t.is_punct(sep) => {
                out.push(std::mem::take(&mut cur));
                i += 1;
            }
            t => {
                cur.push(t.clone());
                i += 1;
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------------
// Interprocedural signature fixed point
// ---------------------------------------------------------------------------

/// Lift callee parameter dimensions back into callers that forward one of
/// their own parameters verbatim: if `f(x)` has `x` undimensioned and its
/// body calls `g(.., x, ..)` where that position of `g` is dimensioned,
/// `x` acquires `g`'s dimension with the witness chain `[g, ..g's own
/// chain]`. Monotone over the finite lattice (Unknown → dimensioned only,
/// first writer wins), so the worklist terminates.
fn propagate_signatures(sigs: &mut Sigs) {
    // (caller, caller-param-name, callee-name, arg-pos, is-method-call)
    let mut forwards: Vec<(usize, String, String, usize, bool)> = Vec::new();
    for (fi, f) in sigs.fns.iter().enumerate() {
        let param_names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        for (callee, args, method) in call_sites(&f.body) {
            for (pos, arg) in args.iter().enumerate() {
                if let [FlatTok::Ident(arg_name, _)] = arg.as_slice() {
                    if param_names.contains(&arg_name.as_str()) {
                        forwards.push((fi, arg_name.clone(), callee.clone(), pos, method));
                    }
                }
            }
        }
    }

    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 32 {
        changed = false;
        rounds += 1;
        for (fi, pname, callee, pos, method) in &forwards {
            let (dim, mut chain, _) = sigs.param_dim(callee, *pos, *method);
            if !dim.is_dimensioned() {
                continue;
            }
            let f = &mut sigs.fns[*fi];
            if let Some(p) = f
                .params
                .iter_mut()
                .find(|p| p.name == *pname && p.dim == Dim::Unknown)
            {
                p.dim = dim;
                let mut full = vec![callee.clone()];
                full.append(&mut chain);
                p.chain = full;
                changed = true;
            }
        }
    }
}

/// Every `name ( args )` / `.name ( args )` call in a token slice,
/// recursing into nested groups. Returns `(callee, args, is_method)`.
fn call_sites(toks: &[FlatTok]) -> Vec<(String, Vec<Vec<FlatTok>>, bool)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let FlatTok::Ident(name, _) = &toks[i] {
            if let Some(FlatTok::Open(Delimiter::Parenthesis, _)) = toks.get(i + 1) {
                if !crate::graph::NON_CALL_KEYWORDS.contains(&name.as_str()) {
                    let end = crate::skip_group(toks, i + 1);
                    let args = split_top_level(&toks[i + 2..end - 1], ',');
                    let is_method = i > 0 && toks[i - 1].is_punct('.');
                    let declares = i > 0 && toks[i - 1].is_ident("fn");
                    let is_macro = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
                    if !declares && !is_macro {
                        out.push((name.clone(), args, is_method));
                    }
                }
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Abstract interpretation of bodies
// ---------------------------------------------------------------------------

struct Analyzer<'a> {
    root: &'a Path,
    sigs: &'a Sigs,
    func: &'a UnitFn,
    diags: &'a mut Vec<Diagnostic>,
}

impl Analyzer<'_> {
    fn rel(&self) -> String {
        self.func
            .file
            .strip_prefix(self.root)
            .unwrap_or(&self.func.file)
            .display()
            .to_string()
    }

    fn report(&mut self, rule: &'static str, tok: &FlatTok, message: String) {
        let pos = tok.span().start();
        self.diags.push(Diagnostic {
            file: self.func.file.clone(),
            line: pos.line,
            column: pos.column,
            rule,
            message,
        });
    }

    /// Analyze one block: split into statements at top-level `;`, handle
    /// `let` bindings, evaluate everything else for its side effects
    /// (diagnostics). `env` mutations stay local to the block's statement
    /// sequence — nested blocks clone, a sound approximation for
    /// shadowing.
    fn analyze_block(&mut self, toks: &[FlatTok], env: &mut BTreeMap<String, Dim>) {
        for stmt in split_top_level(toks, ';') {
            self.analyze_stmt(&stmt, env);
        }
    }

    fn analyze_stmt(&mut self, stmt: &[FlatTok], env: &mut BTreeMap<String, Dim>) {
        if stmt.is_empty() {
            return;
        }
        if stmt[0].is_ident("let") {
            // `let [mut] name [: Type] = init`
            let mut i = 1;
            while i < stmt.len() && (stmt[i].is_ident("mut") || stmt[i].is_ident("ref")) {
                i += 1;
            }
            let Some(FlatTok::Ident(name, _)) = stmt.get(i).cloned() else {
                let _ = self.eval(stmt, env);
                return;
            };
            let eq = stmt.iter().enumerate().position(|(k, t)| {
                t.is_punct('=') && !stmt.get(k + 1).is_some_and(|n| n.is_punct('='))
            });
            let mut dim = Dim::Unknown;
            if let Some(colon) = stmt[i..].iter().position(|t| t.is_punct(':')) {
                let ty_end = eq.unwrap_or(stmt.len());
                if i + colon < ty_end {
                    dim = dim_of_type(&stmt[i + colon + 1..ty_end]);
                }
            }
            if let Some(eq) = eq {
                let init = &stmt[eq + 1..];
                let init_dim = self.eval(init, env);
                if dim == Dim::Unknown {
                    dim = init_dim;
                }
            }
            if dim == Dim::Unknown {
                dim = dim_of_name(&name);
            }
            env.insert(name, dim);
            return;
        }
        let _ = self.eval(stmt, env);
    }

    /// Evaluate a token slice to a dimension, emitting diagnostics for
    /// illegal combinations along the way. Forgiving by design: anything
    /// it does not recognize evaluates to `Unknown`, and `Unknown`
    /// participates in no finding.
    fn eval(&mut self, toks: &[FlatTok], env: &mut BTreeMap<String, Dim>) -> Dim {
        let toks = trim_parens(toks);
        if toks.is_empty() {
            return Dim::Unknown;
        }
        // Control flow: recurse into every nested brace block with a clone
        // of the environment; value is unknowable here.
        if matches!(&toks[0], FlatTok::Ident(k, _)
            if matches!(k.as_str(), "if" | "match" | "while" | "for" | "loop" | "unsafe" | "return" | "break"))
        {
            if toks[0].is_ident("return") {
                return self.eval(&toks[1..], env);
            }
            self.recurse_groups(toks, env);
            return Dim::Unknown;
        }
        // Closures: `|args| body` / `move |args| body` — analyze the body
        // with the outer environment (closure params unknown).
        if toks[0].is_punct('|')
            || (toks[0].is_ident("move") && toks.get(1).is_some_and(|t| t.is_punct('|')))
        {
            self.recurse_groups(toks, env);
            return Dim::Unknown;
        }

        // `expr as Type`: evaluate the head, check for lossy time casts.
        if let Some(at) = find_top_level_as(toks) {
            let head = self.eval(&toks[..at], env);
            if head == Dim::Ns {
                if let Some(FlatTok::Ident(ty, _)) = toks.get(at + 1) {
                    if NARROW_CASTS.contains(&ty.as_str()) {
                        let rel = self.rel();
                        let fname = self.func.name.clone();
                        self.report(
                            "lossy-time-cast",
                            &toks[at],
                            format!(
                                "nanosecond quantity cast `as {ty}` in `{fname}` ({rel}); \
                                 `{ty}` cannot hold simulated time — keep u64/u128 or use \
                                 `SimDuration` end to end",
                            ),
                        );
                    }
                }
            }
            return head;
        }

        // Binary operators, loosest first so `a + b * c` splits at `+`.
        for ops in [&['+', '-'][..], &['*', '/', '%'][..]] {
            if let Some(at) = find_top_level_binop(toks, ops) {
                let FlatTok::Punct(op, _) = toks[at] else {
                    unreachable!()
                };
                let lhs = self.eval(&toks[..at], env);
                let rhs = self.eval(&toks[at + 1..], env);
                return self.combine(op, lhs, rhs, &toks[at]);
            }
        }

        self.eval_atom(toks, env)
    }

    /// Apply the dimension algebra to one binary operation, reporting
    /// illegal combinations.
    fn combine(&mut self, op: char, lhs: Dim, rhs: Dim, at: &FlatTok) -> Dim {
        use Dim::*;
        if lhs == Unknown || rhs == Unknown || lhs == Conflict || rhs == Conflict {
            return Unknown;
        }
        let rel = self.rel();
        let fname = self.func.name.clone();
        match op {
            '+' | '-' => {
                if lhs.is_dimensioned() && rhs.is_dimensioned() && lhs != rhs {
                    self.report(
                        "unit-mismatch",
                        at,
                        format!(
                            "`{}` combines {} with {} in `{fname}` ({rel}); convert one side \
                             (`bytes / rate` yields a duration, `rate * duration` yields bytes)",
                            op,
                            lhs.describe(),
                            rhs.describe(),
                        ),
                    );
                    return Conflict;
                }
                if lhs.is_dimensioned() {
                    lhs
                } else if rhs.is_dimensioned() {
                    rhs
                } else {
                    Count
                }
            }
            '*' => match (lhs, rhs) {
                (a, b) if a.is_scalar() => b,
                (a, b) if b.is_scalar() => a,
                (Rate, Ns) | (Ns, Rate) => Bytes,
                (a, b) => {
                    self.report(
                        "unit-arith",
                        at,
                        format!(
                            "`*` of {} by {} has no physical meaning in `{fname}` ({rel}); \
                             the legal products are scalar*x and rate*duration (= bytes)",
                            a.describe(),
                            b.describe(),
                        ),
                    );
                    Conflict
                }
            },
            '/' | '%' => match (lhs, rhs) {
                (a, b) if b.is_scalar() => a,
                (a, b) if a == b => Count,
                (Bytes, Rate) => Ns,
                (a, b) => {
                    self.report(
                        "unit-arith",
                        at,
                        format!(
                            "`{}` of {} by {} has no physical meaning in `{fname}` ({rel}); \
                             the legal quotients are x/scalar, x/x (= count) and \
                             bytes/rate (= duration)",
                            op,
                            a.describe(),
                            b.describe(),
                        ),
                    );
                    Conflict
                }
            },
            _ => Unknown,
        }
    }

    /// Evaluate an operator-free atom: literals, paths, call chains and
    /// field accesses with trailing method transforms.
    fn eval_atom(&mut self, toks: &[FlatTok], env: &mut BTreeMap<String, Dim>) -> Dim {
        let mut i = 0;
        // Strip leading reference/deref/negation sigils.
        while i < toks.len()
            && (toks[i].is_punct('&')
                || toks[i].is_punct('*')
                || toks[i].is_punct('-')
                || toks[i].is_ident("mut"))
        {
            i += 1;
        }
        if i >= toks.len() {
            return Dim::Unknown;
        }

        let mut dim = match &toks[i] {
            FlatTok::Lit(text, _) => {
                if text.starts_with(|c: char| c.is_ascii_digit()) {
                    Dim::Dimensionless
                } else {
                    Dim::Unknown
                }
            }
            FlatTok::Open(Delimiter::Brace, _) => {
                // Block expression: analyze contents, value unknown.
                let end = crate::skip_group(toks, i);
                let mut inner_env = env.clone();
                self.analyze_block(&toks[i + 1..end - 1], &mut inner_env);
                i = end;
                Dim::Unknown
            }
            FlatTok::Open(..) => {
                let end = crate::skip_group(toks, i);
                let d = self.eval(&toks[i + 1..end - 1], env);
                i = end;
                // A parenthesized head continues into a method chain below.
                return self.eval_chain(toks, i, d, env);
            }
            FlatTok::Ident(head, _) => {
                // `Type :: method ( .. )` constructor paths and plain
                // `ident` lookups; multi-segment paths walk to their last
                // segment.
                let mut segs = vec![head.clone()];
                let mut j = i + 1;
                while j + 1 < toks.len() && toks[j].is_punct(':') && toks[j + 1].is_punct(':') {
                    match toks.get(j + 2) {
                        Some(FlatTok::Ident(seg, _)) => {
                            segs.push(seg.clone());
                            j += 3;
                        }
                        // Turbofish `::<..>` — skip the generic group.
                        Some(FlatTok::Punct('<', _)) => {
                            let mut depth = 0i32;
                            let mut k = j + 2;
                            while k < toks.len() {
                                match &toks[k] {
                                    FlatTok::Punct('<', _) => depth += 1,
                                    FlatTok::Punct('>', _) => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    FlatTok::Open(..) => {
                                        k = crate::skip_group(toks, k) - 1;
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            j = k + 1;
                        }
                        _ => break,
                    }
                }
                let last = segs.last().cloned().unwrap_or_default();
                let penult = segs.len().checked_sub(2).map(|k| segs[k].clone());
                let is_call = toks
                    .get(j)
                    .is_some_and(|t| matches!(t, FlatTok::Open(Delimiter::Parenthesis, _)));
                let d = if is_call {
                    let end = crate::skip_group(toks, j);
                    let args = split_top_level(&toks[j + 1..end - 1], ',');
                    let d = self.eval_call(&last, penult.as_deref(), &args, false, env, &toks[i]);
                    j = end;
                    d
                } else if segs.len() >= 2 {
                    penult
                        .as_deref()
                        .and_then(|ty| ctor_dim(ty, &last))
                        .unwrap_or(Dim::Unknown)
                } else {
                    env.get(&last)
                        .copied()
                        .unwrap_or_else(|| dim_of_name(&last))
                };
                i = j;
                return self.eval_chain(toks, i, d, env);
            }
            _ => Dim::Unknown,
        };

        dim = self.eval_chain(toks, i, dim, env);
        dim
    }

    /// Walk a trailing `.method(args)` / `.field` / `.await` / indexing
    /// chain, transforming `dim` at each step.
    fn eval_chain(
        &mut self,
        toks: &[FlatTok],
        mut i: usize,
        mut dim: Dim,
        env: &mut BTreeMap<String, Dim>,
    ) -> Dim {
        while i < toks.len() {
            if toks[i].is_punct('.') {
                match toks.get(i + 1) {
                    Some(FlatTok::Ident(name, _)) => {
                        let mut k = i + 2;
                        // Turbofish between method name and arguments.
                        if toks.get(k).is_some_and(|t| t.is_punct(':'))
                            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        {
                            let mut depth = 0i32;
                            let mut m = k + 2;
                            while m < toks.len() {
                                match &toks[m] {
                                    FlatTok::Punct('<', _) => depth += 1,
                                    FlatTok::Punct('>', _) => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                m += 1;
                            }
                            k = m + 1;
                        }
                        if toks
                            .get(k)
                            .is_some_and(|t| matches!(t, FlatTok::Open(Delimiter::Parenthesis, _)))
                        {
                            let end = crate::skip_group(toks, k);
                            let args = split_top_level(&toks[k + 1..end - 1], ',');
                            dim = self.eval_method(name, dim, &args, env, &toks[i + 1]);
                            i = end;
                        } else if name == "await" {
                            // `.await` passes the future's value through.
                            i += 2;
                        } else {
                            // Field access: the naming convention is the
                            // only signal (`calib.link_bytes_per_sec`).
                            dim = dim_of_name(name);
                            i += 2;
                        }
                        continue;
                    }
                    Some(FlatTok::Lit(..)) => {
                        // Tuple index `.0` — dimension unknown.
                        dim = Dim::Unknown;
                        i += 2;
                        continue;
                    }
                    _ => return Dim::Unknown,
                }
            }
            if let FlatTok::Open(Delimiter::Bracket, _) = toks[i] {
                // Indexing: recurse for diagnostics, keep the element
                // dimension unknowable.
                let end = crate::skip_group(toks, i);
                let _ = self.eval(&toks[i + 1..end - 1], env);
                dim = Dim::Unknown;
                i = end;
                continue;
            }
            if toks[i].is_punct('?') {
                i += 1;
                continue;
            }
            // Anything else ends the atom (and an unconsumed tail means we
            // did not understand the expression — stay unknown).
            return Dim::Unknown;
        }
        dim
    }

    /// A method call in chain position. The foreign transforms take
    /// priority over name-keyed indexed lookup: `.get()` on a `Cell` or a
    /// newtype is an accessor wherever it appears, and letting a single
    /// same-named workspace definition dimension every call site is
    /// exactly the over-approximation that breeds false positives.
    /// `.await` arrives as a field access, not here.
    fn eval_method(
        &mut self,
        name: &str,
        recv: Dim,
        args: &[Vec<FlatTok>],
        env: &mut BTreeMap<String, Dim>,
        at: &FlatTok,
    ) -> Dim {
        match method_effect(name) {
            // Foreign-transform names are std vocabulary (`div_ceil`,
            // `min`, `len`, …): evaluate arguments for their own findings
            // but skip name-keyed parameter matching — a same-named
            // workspace inherent method must not dimension `u128` math.
            Some(effect) => {
                for arg in args {
                    let _ = self.eval(arg, env);
                }
                match effect {
                    MethodEffect::Keep => recv,
                    MethodEffect::Becomes(d) => d,
                }
            }
            None => {
                self.check_args(name, args, true, env, at);
                self.sigs.ret_dim(name)
            }
        }
    }

    /// A free/path call: constructor dims win, then indexed return dims.
    fn eval_call(
        &mut self,
        name: &str,
        qualifier: Option<&str>,
        args: &[Vec<FlatTok>],
        method: bool,
        env: &mut BTreeMap<String, Dim>,
        at: &FlatTok,
    ) -> Dim {
        if let Some(ty) = qualifier {
            if let Some(d) = ctor_dim(ty, name) {
                // Blessed constructor: arguments are raw by design.
                for arg in args {
                    let _ = self.eval(arg, env);
                }
                return d;
            }
        }
        self.check_args(name, args, method, env, at);
        self.sigs.ret_dim(name)
    }

    /// Argument checking shared by both call forms: raw literals into
    /// dimensioned parameters (`raw-quantity`) and cross-dimension
    /// argument flow (`unit-mismatch`, the swapped-argument case).
    fn check_args(
        &mut self,
        callee: &str,
        args: &[Vec<FlatTok>],
        method: bool,
        env: &mut BTreeMap<String, Dim>,
        at: &FlatTok,
    ) {
        let blessed = BLESSED_CTORS.contains(&callee);
        for (pos, arg) in args.iter().enumerate() {
            let arg_dim = self.eval(arg, env);
            if blessed || self.sigs.defs(callee).is_empty() {
                continue;
            }
            let (pdim, chain, pname) = self.sigs.param_dim(callee, pos, method);
            if !pdim.is_dimensioned() {
                continue;
            }
            let via = {
                let mut full = vec![self.func.name.clone(), callee.to_owned()];
                full.extend(chain.iter().cloned());
                format!(" via `{}`", full.join("` -> `"))
            };
            let rel = self.rel();
            let fname = self.func.name.clone();
            let is_raw_literal = matches!(
                arg.as_slice(),
                [FlatTok::Lit(text, _)] if text.starts_with(|c: char| c.is_ascii_digit())
            );
            if is_raw_literal {
                self.report(
                    "raw-quantity",
                    at,
                    format!(
                        "raw integer literal flows into the {}-dimensioned parameter \
                         `{pname}` of `{callee}` from `{fname}` ({rel}){via}; wrap it in \
                         the typed constructor",
                        pdim.describe(),
                    ),
                );
            } else if arg_dim.is_dimensioned() && arg_dim != pdim {
                self.report(
                    "unit-mismatch",
                    at,
                    format!(
                        "argument of {} flows into the {}-dimensioned parameter `{pname}` \
                         of `{callee}` from `{fname}` ({rel}){via}; the arguments are \
                         crossed or the value needs converting",
                        arg_dim.describe(),
                        pdim.describe(),
                    ),
                );
            }
        }
    }

    /// Recurse into every nested brace group of an unmodeled construct so
    /// statements inside `if`/`match`/closure bodies are still analyzed.
    fn recurse_groups(&mut self, toks: &[FlatTok], env: &mut BTreeMap<String, Dim>) {
        let mut i = 0;
        while i < toks.len() {
            match &toks[i] {
                FlatTok::Open(Delimiter::Brace, _) => {
                    let end = crate::skip_group(toks, i);
                    let mut inner = env.clone();
                    self.analyze_block(&toks[i + 1..end - 1], &mut inner);
                    i = end;
                }
                FlatTok::Open(..) => {
                    let end = crate::skip_group(toks, i);
                    self.recurse_groups(&toks[i + 1..end - 1], env);
                    i = end;
                }
                _ => i += 1,
            }
        }
    }
}

/// Strip one or more layers of full-width parentheses.
fn trim_parens(mut toks: &[FlatTok]) -> &[FlatTok] {
    while toks.len() >= 2 {
        if let FlatTok::Open(Delimiter::Parenthesis, _) = toks[0] {
            if crate::skip_group(toks, 0) == toks.len() {
                toks = &toks[1..toks.len() - 1];
                continue;
            }
        }
        break;
    }
    toks
}

/// Position of a top-level `as` keyword, if any.
fn find_top_level_as(toks: &[FlatTok]) -> Option<usize> {
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            FlatTok::Open(..) => i = crate::skip_group(toks, i),
            t if t.is_ident("as") => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Position of the last top-level binary operator from `ops`, honoring
/// left associativity. Compound assignment (`+=`), arrows (`->`), unary
/// prefixes and deref stars are excluded by shape.
fn find_top_level_binop(toks: &[FlatTok], ops: &[char]) -> Option<usize> {
    let mut found = None;
    let mut i = 0;
    let mut prev_is_atom_end = false;
    while i < toks.len() {
        match &toks[i] {
            FlatTok::Open(..) => {
                i = crate::skip_group(toks, i);
                prev_is_atom_end = true;
                continue;
            }
            FlatTok::Punct(c, _) if ops.contains(c) => {
                let next_eq = toks.get(i + 1).is_some_and(|t| t.is_punct('='));
                let arrow = *c == '-' && toks.get(i + 1).is_some_and(|t| t.is_punct('>'));
                if prev_is_atom_end && !next_eq && !arrow {
                    found = Some(i);
                }
                prev_is_atom_end = false;
            }
            FlatTok::Ident(..) | FlatTok::Lit(..) | FlatTok::Close(..) => {
                prev_is_atom_end = true;
            }
            FlatTok::Punct('?', _) => {
                prev_is_atom_end = true;
            }
            _ => prev_is_atom_end = false,
        }
        i += 1;
    }
    found
}

// ---------------------------------------------------------------------------
// Pass driver
// ---------------------------------------------------------------------------

/// True when `file` lives under one of the sim-scope directories of
/// `root` (virtual fixture paths match on relative shape).
fn in_sim_scope(root: &Path, file: &Path) -> bool {
    let rel = file.strip_prefix(root).unwrap_or(file);
    SIM_SCOPE.iter().any(|dir| rel.starts_with(dir))
}

/// Run the units pass over `files`; append findings to `diags`. Findings
/// are only *reported* in sim scope, but signatures everywhere feed the
/// interprocedural fixed point.
pub fn units_pass(root: &Path, files: &[(PathBuf, String)], diags: &mut Vec<Diagnostic>) {
    let mut sigs = build_sigs(files);
    propagate_signatures(&mut sigs);
    let mut found = Vec::new();
    for fi in 0..sigs.fns.len() {
        let func = sigs.fns[fi].clone();
        if !in_sim_scope(root, &func.file) {
            continue;
        }
        let mut env: BTreeMap<String, Dim> = func
            .params
            .iter()
            .map(|p| (p.name.clone(), p.dim))
            .collect();
        let body = func.body.clone();
        let mut analyzer = Analyzer {
            root,
            sigs: &sigs,
            func: &func,
            diags: &mut found,
        };
        analyzer.analyze_block(&body, &mut env);
    }
    found.sort();
    found.dedup();
    diags.append(&mut found);
}

/// Run the units pass with in-place `simlint: allow` suppression, using
/// the same policy as [`crate::dataflow::run_dataflow`]: engine
/// diagnostics from allow parsing are dropped (the classic layer already
/// reports them), and `unused-allow` fires only for annotations naming
/// *exclusively* units rules.
pub fn run_units(root: &Path, files: &[(PathBuf, String)]) -> crate::dataflow::DataflowOutcome {
    let mut found = Vec::new();
    units_pass(root, files, &mut found);

    let mut known: Vec<&'static str> = crate::rules::all_rules().iter().map(|r| r.name()).collect();
    known.extend(crate::dataflow::DATAFLOW_RULES.iter().map(|(n, _)| *n));
    known.extend(UNITS_RULES.iter().map(|(n, _)| *n));

    let mut diags = Vec::new();
    let mut suppressed = Vec::new();
    let mut by_file: BTreeMap<PathBuf, Vec<Diagnostic>> = BTreeMap::new();
    for d in found {
        by_file.entry(d.file.clone()).or_default().push(d);
    }
    for (path, src) in files {
        let mut allows = crate::parse_allows(path, src, &known, &mut Vec::new());
        for d in by_file.remove(path).unwrap_or_default() {
            let hit = allows.iter_mut().any(|a| {
                let hit = a.target_line == d.line && a.rules.iter().any(|r| r == d.rule);
                if hit {
                    a.used = true;
                }
                hit
            });
            if hit {
                suppressed.push(d);
            } else {
                diags.push(d);
            }
        }
        for a in &allows {
            if !a.used && a.rules.iter().all(|r| is_units_rule(r)) {
                diags.push(Diagnostic {
                    file: path.clone(),
                    line: a.decl_line,
                    column: 0,
                    rule: "unused-allow",
                    message: format!(
                        "allow({}) suppresses nothing on line {}; remove the stale annotation",
                        a.rules.join(", "),
                        a.target_line
                    ),
                });
            }
        }
    }
    for (_, rest) in by_file {
        diags.extend(rest);
    }
    diags.sort();
    suppressed.sort();
    crate::dataflow::DataflowOutcome { diags, suppressed }
}

/// Render the committed units baseline for the given findings (same
/// fingerprint scheme as the dataflow baseline: `rule|path|message`, no
/// line numbers).
pub fn render_units_baseline(root: &Path, diags: &[Diagnostic]) -> String {
    let mut lines: Vec<String> = diags
        .iter()
        .map(|d| crate::dataflow::fingerprint(root, d))
        .collect();
    lines.sort();
    let mut out = String::from(
        "# simlint units baseline — accepted pre-existing findings.\n\
         # One `rule|path|message` fingerprint per line (no line numbers: see\n\
         # DESIGN.md §12). Regenerate with `simlint --units --write-baseline`\n\
         # only as a deliberate, reviewed acceptance.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let owned: Vec<(PathBuf, String)> = files
            .iter()
            .map(|(p, s)| (PathBuf::from(p), (*s).to_owned()))
            .collect();
        let mut diags = Vec::new();
        units_pass(Path::new(""), &owned, &mut diags);
        diags
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn cross_dimension_addition_is_a_mismatch() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn f(bytes: Bytes, dur: SimDuration) -> u64 { let x = bytes + dur; 0 }\n",
        )]);
        assert_eq!(rules_of(&diags), ["unit-mismatch"], "{diags:?}");
        assert!(diags[0].message.contains("bytes"), "{}", diags[0].message);
        assert!(
            diags[0].message.contains("nanoseconds"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn same_dimension_addition_is_fine() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn f(a: Bytes, b: Bytes) { let _ = a + b; }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn legal_algebra_composes() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn f(bytes: Bytes, rate: ByteRate, n: u64) {\n\
             \x20   let d = bytes / rate;\n\
             \x20   let b2 = rate * d;\n\
             \x20   let per = bytes / n;\n\
             \x20   let total = bytes * 4;\n\
             \x20   let frac = bytes / bytes;\n\
             \x20   let _ = (b2, per, total, frac);\n\
             }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn meaningless_products_are_arith_errors() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn f(a: SimDuration, b: SimDuration, c: Bytes) {\n\
             \x20   let x = a * b;\n\
             \x20   let y = c * a;\n\
             }\n",
        )]);
        assert_eq!(rules_of(&diags), ["unit-arith", "unit-arith"], "{diags:?}");
    }

    #[test]
    fn name_convention_seeds_integer_params_only() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn f(total_bytes: u64, elapsed_ns: u64, label: String) {\n\
             \x20   let _ = total_bytes + elapsed_ns;\n\
             }\n",
        )]);
        assert_eq!(rules_of(&diags), ["unit-mismatch"], "{diags:?}");
    }

    #[test]
    fn raw_literal_into_dimensioned_param_is_flagged() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn send(bytes: Bytes) {}\n\
             fn caller() { send(1448); }\n",
        )]);
        assert_eq!(rules_of(&diags), ["raw-quantity"], "{diags:?}");
        assert!(
            diags[0].message.contains("`caller` -> `send`"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn blessed_constructors_take_raw_literals() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn caller() -> Bytes { let d = SimDuration::from_nanos(40); Bytes::new(1448) }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn swapped_arguments_are_a_mismatch_with_chain() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn serialize(bytes: Bytes, dur: SimDuration) {}\n\
             fn caller(b: Bytes, d: SimDuration) { serialize(d, b); }\n",
        )]);
        assert_eq!(
            rules_of(&diags),
            ["unit-mismatch", "unit-mismatch"],
            "{diags:?}"
        );
        assert!(
            diags[0].message.contains("`caller` -> `serialize`"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn interprocedural_chain_crosses_helpers() {
        // `outer` passes a literal to `mid`, whose parameter is only
        // dimensioned because `mid` forwards it into `inner`.
        let diags = run(&[
            (
                "crates/simnet/src/a.rs",
                "fn inner(bytes: Bytes) {}\n\
                 fn mid(n: u64) { inner(n); }\n",
            ),
            ("crates/iwarp/src/b.rs", "fn outer() { mid(4096); }\n"),
        ]);
        let raws: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "raw-quantity").collect();
        assert_eq!(raws.len(), 1, "{diags:?}");
        assert!(
            raws[0].message.contains("`outer` -> `mid` -> `inner`"),
            "witness chain must cross the helper: {}",
            raws[0].message
        );
    }

    #[test]
    fn lossy_time_cast_is_flagged_and_widening_is_not() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn f(d: SimDuration) -> u32 {\n\
             \x20   let wide = d.as_nanos() as u128;\n\
             \x20   d.as_nanos() as u32\n\
             }\n",
        )]);
        assert_eq!(rules_of(&diags), ["lossy-time-cast"], "{diags:?}");
    }

    #[test]
    fn findings_outside_sim_scope_are_not_reported() {
        let diags = run(&[(
            "crates/bench/src/f.rs",
            "fn f(a: Bytes, b: SimDuration) { let _ = a + b; }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_items_are_skipped() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "#[cfg(test)]\nmod tests { fn f(a: Bytes, b: SimDuration) { let _ = a + b; } }\n\
             #[test]\nfn t() { let _ = 1; }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_dimensions_never_fire() {
        let diags = run(&[(
            "crates/simnet/src/f.rs",
            "fn f(x: u64, y: u64, b: Bytes) {\n\
             \x20   let a = x + y;\n\
             \x20   let c = b + x;\n\
             \x20   let d = b * x;\n\
             }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_suppresses_units_finding() {
        let files = vec![(
            PathBuf::from("crates/simnet/src/f.rs"),
            "fn f(a: Bytes, b: SimDuration) {\n\
             \x20   let _ = a + b; // simlint: allow(unit-mismatch) -- fixture\n\
             }\n"
            .to_owned(),
        )];
        let out = run_units(Path::new(""), &files);
        assert!(out.diags.is_empty(), "{:?}", out.diags);
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].rule, "unit-mismatch");
    }

    #[test]
    fn baseline_renders_deterministically() {
        let d = Diagnostic {
            file: PathBuf::from("crates/simnet/src/f.rs"),
            line: 3,
            column: 7,
            rule: "unit-mismatch",
            message: "m".to_owned(),
        };
        let a = render_units_baseline(Path::new(""), std::slice::from_ref(&d));
        let b = render_units_baseline(Path::new(""), &[d]);
        assert_eq!(a, b);
        assert!(a.contains("unit-mismatch|crates/simnet/src/f.rs|m\n"));
    }
}
