//! Pass 1 of the dataflow engine: a workspace-wide item index and call
//! graph.
//!
//! The per-file rules in [`crate::rules`] see one token stream at a time, so
//! a nondeterminism source laundered through a helper — `fn stamp() ->
//! Instant { Instant::now() }` called from another crate — crosses the file
//! boundary invisibly. This module builds the structure the interprocedural
//! passes ([`crate::taint`], [`crate::fsm`]) walk: every function item in
//! the analyzed file set, the names it calls, and the source/sink/panic
//! facts of its body.
//!
//! ## Approximations (deliberate, documented in DESIGN.md §11)
//!
//! * **Name-keyed resolution.** The vendored `syn` has no type or path
//!   resolution, so calls are edges to *names*: `x.transfer(..)` is an edge
//!   to every function named `transfer` in the index. This over-approximates
//!   (a few false edges through common names) and never under-approximates,
//!   which is the right polarity for a taint analysis.
//! * **Function-granular taint.** A function that touches a source is
//!   tainted as a whole; we do not track which of its return values or
//!   parameters carry the value. Again: sound for rejection, coarse for
//!   blame.
//! * **Test code is skipped.** Items behind `#[cfg(test)]` and `mod tests`
//!   bodies are production-irrelevant and full of deliberate `unwrap()`s.

use crate::{path_at, skip_group, Diagnostic, FlatTok};

use proc_macro2::Delimiter;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee *name* (last path segment / method name).
    pub callee: String,
    pub line: usize,
    pub column: usize,
}

/// A nondeterminism source found directly in a function body.
#[derive(Debug, Clone)]
pub struct SourceSite {
    /// Human-readable description, e.g. "wall-clock read (`Instant`)".
    pub what: String,
    pub line: usize,
}

/// A simulation-state sink found directly in a function body.
#[derive(Debug, Clone)]
pub struct SinkSite {
    /// Sink description, e.g. "sim event scheduling (`.spawn(..)`)".
    pub what: String,
    pub line: usize,
    pub column: usize,
}

/// A `.unwrap()` call site (panic-path audit raw material).
#[derive(Debug, Clone)]
pub struct UnwrapSite {
    pub line: usize,
    pub column: usize,
}

/// One function item in the analyzed file set.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub name: String,
    pub file: PathBuf,
    pub line: usize,
    pub calls: Vec<CallSite>,
    pub sources: Vec<SourceSite>,
    pub sinks: Vec<SinkSite>,
    pub unwraps: Vec<UnwrapSite>,
}

/// The workspace index: every production function, plus a name → definition
/// map for call resolution. Both sides use `BTreeMap`/sorted `Vec`s so the
/// downstream passes iterate deterministically.
#[derive(Debug, Default)]
pub struct Index {
    pub fns: Vec<FnNode>,
    /// Function name → indices into [`Index::fns`].
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl Index {
    /// Definitions of `name`, empty slice when unresolved (std/vendored).
    pub fn defs(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Keywords that can syntactically precede a parenthesis without being a
/// call (`if (cond)`, `while (cond)`, `match (tuple)`, `return (x)`, …).
pub(crate) const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "move", "async", "await", "else",
    "let", "mut", "ref", "box", "yield", "dyn", "impl", "where",
];

/// Direct nondeterminism sources, keyed on bare identifiers. Mirrors the
/// per-file rule tables in [`crate::rules`] — the dataflow pass exists to
/// catch the *laundered* versions of the same hazards.
const SOURCE_IDENTS: &[(&str, &str)] = &[
    ("Instant", "wall-clock read (`Instant`)"),
    ("SystemTime", "wall-clock read (`SystemTime`)"),
    ("UNIX_EPOCH", "wall-clock read (`UNIX_EPOCH`)"),
    ("thread_rng", "environment-seeded RNG (`thread_rng`)"),
    ("ThreadRng", "environment-seeded RNG (`ThreadRng`)"),
    ("from_entropy", "environment-seeded RNG (`from_entropy`)"),
    ("from_os_rng", "environment-seeded RNG (`from_os_rng`)"),
    ("OsRng", "environment-seeded RNG (`OsRng`)"),
    ("getrandom", "environment-seeded RNG (`getrandom`)"),
    ("ThreadId", "thread-identity read (`ThreadId`)"),
    (
        "available_parallelism",
        "host-topology read (`available_parallelism`)",
    ),
];

/// Hash-ordered containers: a source only when the same body also iterates
/// (lookups never observe the randomized order).
const HASH_CONTAINER_IDENTS: &[&str] = &["HashMap", "HashSet", "FxHashMap", "AHashMap"];
const ITERATION_IDENTS: &[&str] = &["iter", "iter_mut", "into_iter", "values", "keys", "drain"];

/// Method-call sinks: `.name(..)` expressions that hand a value to the
/// simulation core. `reserve*`/`transfer` are pipe reservations, the rest
/// schedule events.
const SINK_METHODS: &[(&str, &str)] = &[
    ("spawn", "sim event scheduling (`.spawn(..)`)"),
    ("sleep", "sim event scheduling (`.sleep(..)`)"),
    ("sleep_until", "sim event scheduling (`.sleep_until(..)`)"),
    ("reserve", "pipe reservation (`.reserve(..)`)"),
    ("reserve_n", "pipe reservation (`.reserve_n(..)`)"),
    (
        "reserve_message",
        "pipe reservation (`.reserve_message(..)`)",
    ),
    ("transfer", "pipe reservation (`.transfer(..)`)"),
];

/// `ShardCtx::send` is the cross-shard merge channel; `send` alone is far
/// too common a name, so the sink fires only in bodies that also mention
/// `ShardCtx`.
const SHARD_CTX_IDENT: &str = "ShardCtx";

/// Fabric hot-path entry points for the panic-path audit: the four
/// fabrics' transfer engines plus the user-facing posting calls that lead
/// into them.
pub const HOT_PATH_ENTRIES: &[&str] = &[
    "transfer",
    "transfer_with_recovery",
    "transfer_go_back_n",
    "transfer_with_resend",
    "post_send_wr",
    "isend",
    "irecv",
];

/// Build the index over `(path, source)` pairs. Files that fail to parse
/// contribute a `parse-error` diagnostic and no functions.
pub fn build_index(files: &[(PathBuf, String)], diags: &mut Vec<Diagnostic>) -> Index {
    let mut index = Index::default();
    for (path, src) in files {
        let ast = match syn::parse_file(src) {
            Ok(ast) => ast,
            Err(err) => {
                diags.push(Diagnostic {
                    file: path.clone(),
                    line: err.span().start().line,
                    column: err.span().start().column,
                    rule: "parse-error",
                    message: err.to_string(),
                });
                continue;
            }
        };
        for item in &ast.items {
            index_item(path, item, &mut index);
        }
    }
    for (i, f) in index.fns.iter().enumerate() {
        index.by_name.entry(f.name.clone()).or_default().push(i);
    }
    index
}

fn index_item(file: &Path, item: &syn::Item, index: &mut Index) {
    if is_test_item(item) {
        return;
    }
    match item.kind {
        syn::ItemKind::Fn => {
            if let Some(ident) = &item.ident {
                let mut flat = Vec::new();
                crate::flatten(&item.tokens, &mut flat);
                index
                    .fns
                    .push(scan_fn(file, ident.to_string(), item, &flat));
            }
        }
        syn::ItemKind::Mod | syn::ItemKind::Impl | syn::ItemKind::Trait => {
            for sub in &item.sub_items {
                index_item(file, sub, index);
            }
        }
        _ => {}
    }
}

/// True for `#[cfg(test)]` items and `mod tests` bodies.
pub(crate) fn is_test_item(item: &syn::Item) -> bool {
    if item.kind == syn::ItemKind::Mod && item.ident.as_ref().is_some_and(|i| *i == "tests") {
        return true;
    }
    has_cfg_test_attr(&item.tokens)
}

/// Scan the leading `#[…]` attribute groups of an item's token stream for
/// `cfg` applied to a group containing the `test` ident (covers
/// `#[cfg(test)]` and `#[cfg(all(test, …))]`).
fn has_cfg_test_attr(tokens: &proc_macro2::TokenStream) -> bool {
    let mut trees = tokens.into_iter();
    loop {
        match trees.next() {
            Some(proc_macro2::TokenTree::Punct(p)) if p.as_char() == '#' => {
                let Some(proc_macro2::TokenTree::Group(g)) = trees.next() else {
                    return false;
                };
                let mut inner = g.stream().into_iter();
                let is_cfg = matches!(
                    inner.next(),
                    Some(proc_macro2::TokenTree::Ident(i)) if i == "cfg"
                );
                if is_cfg {
                    if let Some(proc_macro2::TokenTree::Group(args)) = inner.next() {
                        if stream_mentions_ident(&args.stream(), "test") {
                            return true;
                        }
                    }
                }
            }
            // Attributes come first; any other token ends the attr run.
            _ => return false,
        }
    }
}

fn stream_mentions_ident(stream: &proc_macro2::TokenStream, name: &str) -> bool {
    for tree in stream {
        match tree {
            proc_macro2::TokenTree::Ident(i) if i == name => return true,
            proc_macro2::TokenTree::Group(g) if stream_mentions_ident(&g.stream(), name) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Extract calls, sources, sinks and unwraps from one function's flattened
/// token stream (signature + body; nested closures and `fn`s are attributed
/// to the enclosing item — conservative and cheap).
fn scan_fn(file: &Path, name: String, item: &syn::Item, toks: &[FlatTok]) -> FnNode {
    let mut node = FnNode {
        name,
        file: file.to_owned(),
        line: item.span.start().line,
        calls: Vec::new(),
        sources: Vec::new(),
        sinks: Vec::new(),
        unwraps: Vec::new(),
    };
    let mentions_shard_ctx = toks.iter().any(|t| t.is_ident(SHARD_CTX_IDENT));
    let mentions_iteration = toks
        .iter()
        .any(|t| matches!(t, FlatTok::Ident(n, _) if ITERATION_IDENTS.contains(&n.as_str())));

    for (i, tok) in toks.iter().enumerate() {
        let FlatTok::Ident(ident, span) = tok else {
            continue;
        };
        let pos = span.start();

        // --- direct sources -------------------------------------------------
        if let Some((_, what)) = SOURCE_IDENTS.iter().find(|(n, _)| n == ident) {
            node.sources.push(SourceSite {
                what: (*what).to_owned(),
                line: pos.line,
            });
        } else if path_at(toks, i, &["std", "env"]) {
            node.sources.push(SourceSite {
                what: "environment read (`std::env`)".to_owned(),
                line: pos.line,
            });
        } else if HASH_CONTAINER_IDENTS.contains(&ident.as_str()) && mentions_iteration {
            node.sources.push(SourceSite {
                what: format!("hash-ordered iteration (`{ident}` + iterator methods)"),
                line: pos.line,
            });
        }

        // --- calls (and method-call sinks / unwraps) ------------------------
        let called = toks
            .get(i + 1)
            .is_some_and(|t| matches!(t, FlatTok::Open(Delimiter::Parenthesis, _)))
            || is_turbofish_call(toks, i + 1);
        if !called || NON_CALL_KEYWORDS.contains(&ident.as_str()) {
            continue;
        }
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        // `fn name(` is the declaration, not a call.
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        // `name!(…)` is a macro invocation; `assert!`/`vec!` etc. are not
        // function edges (panics inside macros are the macro's business).
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        node.calls.push(CallSite {
            callee: ident.clone(),
            line: pos.line,
            column: pos.column,
        });
        if is_method {
            if ident == "unwrap" {
                node.unwraps.push(UnwrapSite {
                    line: pos.line,
                    column: pos.column,
                });
            }
            if let Some((_, what)) = SINK_METHODS.iter().find(|(n, _)| n == ident) {
                node.sinks.push(SinkSite {
                    what: (*what).to_owned(),
                    line: pos.line,
                    column: pos.column,
                });
            }
            if ident == "send" && mentions_shard_ctx {
                node.sinks.push(SinkSite {
                    what: "cross-shard merge send (`ShardCtx::send(..)`)".to_owned(),
                    line: pos.line,
                    column: pos.column,
                });
            }
        }
    }

    // `MemoKey { … }` construction: type ident followed by a brace group.
    for (i, tok) in toks.iter().enumerate() {
        if let FlatTok::Ident(ident, span) = tok {
            // Exclusions: `struct MemoKey { … }` is the definition, and
            // `-> MemoKey {` is a return type followed by the fn body.
            let declarative = i > 0 && toks[i - 1].is_ident("struct")
                || i > 1 && toks[i - 2].is_punct('-') && toks[i - 1].is_punct('>');
            if ident == "MemoKey"
                && toks
                    .get(i + 1)
                    .is_some_and(|t| matches!(t, FlatTok::Open(Delimiter::Brace, _)))
                && !declarative
            {
                node.sinks.push(SinkSite {
                    what: "replay-cache key construction (`MemoKey { .. }`)".to_owned(),
                    line: span.start().line,
                    column: span.start().column,
                });
            }
        }
    }
    node
}

/// True when `toks[at..]` spells `:: < … > (` — a turbofish call like
/// `sum::<f64>()`.
fn is_turbofish_call(toks: &[FlatTok], at: usize) -> bool {
    if !(toks.get(at).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 2).is_some_and(|t| t.is_punct('<')))
    {
        return false;
    }
    let mut depth = 0i32;
    let mut j = at + 2;
    while j < toks.len() {
        match &toks[j] {
            FlatTok::Punct('<', _) => depth += 1,
            FlatTok::Punct('>', _) => {
                depth -= 1;
                if depth == 0 {
                    return toks
                        .get(j + 1)
                        .is_some_and(|t| matches!(t, FlatTok::Open(Delimiter::Parenthesis, _)));
                }
            }
            FlatTok::Open(..) => {
                j = skip_group(toks, j);
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str) -> Index {
        let mut diags = Vec::new();
        let index = build_index(&[(PathBuf::from("t.rs"), src.to_owned())], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        index
    }

    #[test]
    fn calls_and_methods_are_edges() {
        let idx = index_of(
            "fn a() { b(); x.c(); d::<u32>(); if x { } }\n\
             fn b() {}\n",
        );
        let a = &idx.fns[idx.defs("a")[0]];
        let callees: Vec<&str> = a.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, ["b", "c", "d"]);
    }

    #[test]
    fn sources_sinks_unwraps_are_found() {
        let idx =
            index_of("fn hot(sim: &Sim) { let t = Instant::now(); sim.spawn(fut); q.unwrap(); }\n");
        let f = &idx.fns[idx.defs("hot")[0]];
        assert_eq!(f.sources.len(), 1, "{f:?}");
        assert!(f.sources[0].what.contains("Instant"));
        assert_eq!(f.sinks.len(), 1);
        assert_eq!(f.unwraps.len(), 1);
    }

    #[test]
    fn cfg_test_items_and_mod_tests_are_skipped() {
        let idx = index_of(
            "#[cfg(test)] fn gone() { x.unwrap(); }\n\
             mod tests { pub fn also_gone() {} }\n\
             #[cfg(all(test, feature = \"x\"))] mod t2 { pub fn gone3() {} }\n\
             fn kept() {}\n",
        );
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "kept");
    }

    #[test]
    fn impl_and_mod_fns_are_indexed() {
        let idx = index_of(
            "impl Foo { pub fn m(&self) { helper(); } }\n\
             mod inner { pub fn helper() {} }\n",
        );
        assert_eq!(idx.defs("m").len(), 1);
        assert_eq!(idx.defs("helper").len(), 1);
    }

    #[test]
    fn memo_key_construction_is_a_sink_but_definition_is_not() {
        let idx = index_of(
            "struct MemoKey { a: u64 }\n\
             fn build() -> MemoKey { MemoKey { a: 1 } }\n",
        );
        let f = &idx.fns[idx.defs("build")[0]];
        assert_eq!(f.sinks.len(), 1, "{f:?}");
        assert!(f.sinks[0].what.contains("MemoKey"));
    }

    #[test]
    fn shard_send_sink_requires_shard_ctx_mention() {
        let plain = index_of("fn a(tx: &Sender) { tx.send(1); }\n");
        assert!(plain.fns[0].sinks.is_empty());
        let shard = index_of("fn b(ctx: &ShardCtx) { ctx.send(1); }\n");
        assert_eq!(shard.fns[0].sinks.len(), 1);
    }
}
