//! The determinism & simulation-safety rule set.
//!
//! Every rule is a token-pattern walker over [`FlatTok`] sequences (plus the
//! item structure from the vendored `syn` where it helps). Rules are
//! *syntactic by design* — see the crate docs — and every rule here exists
//! because its target has a concrete, silent failure mode in a discrete-event
//! simulation; DESIGN.md ("Determinism invariants") documents each one.

use crate::{path_at, skip_group, Diagnostic, FileContext, FlatTok};

use proc_macro2::{Delimiter, Span};

/// A single named lint with a one-line summary and a checker.
pub trait Rule {
    fn name(&self) -> &'static str;
    /// One line for `--list-rules` and the docs.
    fn summary(&self) -> &'static str;
    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>);
}

/// The full registry, in stable reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HashCollections),
        Box::new(WallClock),
        Box::new(ThreadSpawn),
        Box::new(UnseededRng),
        Box::new(FloatHashAccum),
        Box::new(RelaxedAtomics),
        Box::new(CrossShardState),
        Box::new(MemoKeyFields),
    ]
}

fn report(
    ctx: &FileContext,
    span: Span,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    out.push(Diagnostic {
        file: ctx.file.clone(),
        line: span.start().line,
        column: span.start().column,
        rule,
        message,
    });
}

// ---------------------------------------------------------------------------
// hash-collections
// ---------------------------------------------------------------------------

/// Hash-ordered containers iterate in a per-process-randomized order
/// (`RandomState` seeds from the OS), so *any* reachable iteration —
/// including `Debug` formatting and drop order of drained entries — leaks
/// nondeterminism into event ordering. Sim-state code must use `BTreeMap`/
/// `BTreeSet` (or `Vec` + sort) instead; lookups that genuinely never
/// iterate may carry an allow with justification.
struct HashCollections;

const HASH_IDENTS: &[(&str, &str)] = &[
    ("HashMap", "use `BTreeMap` (deterministic iteration order)"),
    ("HashSet", "use `BTreeSet` (deterministic iteration order)"),
    ("hash_map", "use `std::collections::btree_map` equivalents"),
    ("hash_set", "use `std::collections::btree_set` equivalents"),
    ("RandomState", "hash seeding is per-process random"),
    ("DefaultHasher", "hash seeding is per-process random"),
    (
        "FxHashMap",
        "use `BTreeMap` (deterministic iteration order)",
    ),
    (
        "FxHashSet",
        "use `BTreeSet` (deterministic iteration order)",
    ),
    ("AHashMap", "use `BTreeMap` (deterministic iteration order)"),
    ("AHashSet", "use `BTreeSet` (deterministic iteration order)"),
];

impl Rule for HashCollections {
    fn name(&self) -> &'static str {
        "hash-collections"
    }

    fn summary(&self) -> &'static str {
        "hash-ordered containers (HashMap/HashSet/RandomState) iterate in randomized order; sim state requires BTree containers"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        for tok in &ctx.flat {
            if let FlatTok::Ident(name, span) = tok {
                if let Some((_, hint)) = HASH_IDENTS.iter().find(|(n, _)| n == name) {
                    report(
                        ctx,
                        *span,
                        self.name(),
                        format!("`{name}` in simulation-scope code: {hint}"),
                        out,
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

/// The DES core advances virtual time only; a `std::time` read couples
/// simulation behaviour to host scheduling and load, which breaks replay
/// bit-exactness. Simulated code reads `Sim::now()` / `SimTime` instead.
struct WallClock;

const WALL_CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn summary(&self) -> &'static str {
        "std::time reads (Instant/SystemTime) couple sim behaviour to the host clock; use Sim::now()/SimTime"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let toks = &ctx.flat;
        for (i, tok) in toks.iter().enumerate() {
            if let FlatTok::Ident(name, span) = tok {
                if WALL_CLOCK_IDENTS.contains(&name.as_str()) {
                    report(
                        ctx,
                        *span,
                        self.name(),
                        format!("`{name}` is wall-clock time; simulated code must use `Sim::now()`/`SimTime`"),
                        out,
                    );
                } else if path_at(toks, i, &["std", "time"]) {
                    report(
                        ctx,
                        *span,
                        self.name(),
                        "`std::time` is wall-clock time; simulated code must use `simnet::time`"
                            .to_owned(),
                        out,
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// thread-spawn
// ---------------------------------------------------------------------------

/// The executor is single-threaded on purpose: OS threads introduce
/// scheduler-dependent interleavings that no seed can replay. Concurrency
/// inside a simulation is expressed as sim tasks (`Sim::spawn`), never as
/// `std::thread`.
struct ThreadSpawn;

impl Rule for ThreadSpawn {
    fn name(&self) -> &'static str {
        "thread-spawn"
    }

    fn summary(&self) -> &'static str {
        "std::thread in sim code introduces OS-scheduler nondeterminism; use Sim::spawn tasks"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let toks = &ctx.flat;
        for (i, tok) in toks.iter().enumerate() {
            let FlatTok::Ident(name, span) = tok else {
                continue;
            };
            // Matched as paths, not bare idents: `simnet` exports its own
            // (simulated-task) `spawn` and `JoinHandle`, which are the
            // *correct* spellings — only the `std::thread` forms are banned.
            // `std::thread` is matched from its second segment (`thread`
            // preceded by `std ::`) so that *every* member — `spawn`,
            // `scope`, `Builder`, `available_parallelism` — is caught, not
            // just the spellings that happen to start a two-segment path.
            let after_std = i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("std");
            let hit = name == "thread" && (after_std || path_at(toks, i, &["thread", "spawn"]));
            if hit {
                report(
                    ctx,
                    *span,
                    self.name(),
                    "`std::thread` in simulation-scope code; express concurrency as `Sim::spawn` tasks".to_owned(),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unseeded-rng
// ---------------------------------------------------------------------------

/// Any RNG whose seed comes from the environment (OS entropy, thread-local
/// state) makes two runs diverge by construction. Randomness in simulations
/// must flow from an explicit, logged seed (`seed_from_u64`, a fixed seed
/// array, or the proptest harness's own seed plumbing).
struct UnseededRng;

const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
    "fastrand",
];

impl Rule for UnseededRng {
    fn name(&self) -> &'static str {
        "unseeded-rng"
    }

    fn summary(&self) -> &'static str {
        "environment-seeded RNGs (thread_rng/from_entropy/OsRng) diverge across runs; seed explicitly"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let toks = &ctx.flat;
        for (i, tok) in toks.iter().enumerate() {
            let FlatTok::Ident(name, span) = tok else {
                continue;
            };
            let hit = RNG_IDENTS.contains(&name.as_str())
                || (name == "rand" && path_at(toks, i, &["rand", "random"]));
            if hit {
                report(
                    ctx,
                    *span,
                    self.name(),
                    format!("`{name}` draws entropy from the environment; construct RNGs from an explicit seed"),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// float-hash-accum
// ---------------------------------------------------------------------------

/// Float addition is not associative, so reducing an *unordered* iterator
/// (`.values()`, `.keys()` of a hash container) into an `f32`/`f64` yields
/// run-dependent low bits even when the element set is identical. The fix
/// is an ordered source (BTree containers, sorted Vec) — made explicit in
/// `stats.rs`-style reducers.
struct FloatHashAccum;

const UNORDERED_SOURCES: &[&str] = &["values", "keys", "into_values", "into_keys"];
const REDUCERS: &[&str] = &["sum", "product"];

fn float_literal(text: &str) -> bool {
    text.contains('.') || text.ends_with("f32") || text.ends_with("f64")
}

impl Rule for FloatHashAccum {
    fn name(&self) -> &'static str {
        "float-hash-accum"
    }

    fn summary(&self) -> &'static str {
        "f32/f64 reduction over .values()/.keys() iteration is order-sensitive; reduce over an ordered source"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let toks = &ctx.flat;
        let mut i = 0usize;
        while i < toks.len() {
            // Chain start: `. values ( … )` (or keys/into_values/into_keys).
            let started = i + 2 < toks.len()
                && toks[i].is_punct('.')
                && matches!(&toks[i + 1], FlatTok::Ident(n, _) if UNORDERED_SOURCES.contains(&n.as_str()))
                && matches!(&toks[i + 2], FlatTok::Open(Delimiter::Parenthesis, _));
            if !started {
                i += 1;
                continue;
            }
            let FlatTok::Ident(source, _) = &toks[i + 1] else {
                unreachable!("matched ident above");
            };
            let mut j = skip_group(toks, i + 2);
            // Walk the rest of the method chain looking for a float reducer.
            while j < toks.len() && toks[j].is_punct('.') {
                let Some(FlatTok::Ident(link, link_span)) = toks.get(j + 1) else {
                    break;
                };
                let mut k = j + 2;
                // Optional turbofish: `:: < … >` with nested angle brackets.
                let mut turbofish = String::new();
                if k + 2 < toks.len()
                    && toks[k].is_punct(':')
                    && toks[k + 1].is_punct(':')
                    && toks[k + 2].is_punct('<')
                {
                    k += 2;
                    let mut depth = 0i32;
                    while k < toks.len() {
                        match &toks[k] {
                            FlatTok::Punct('<', _) => depth += 1,
                            FlatTok::Punct('>', _) => {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            FlatTok::Ident(s, _) => turbofish.push_str(s),
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let Some(FlatTok::Open(Delimiter::Parenthesis, _)) = toks.get(k) else {
                    break; // field access / end of chain
                };
                let args_end = skip_group(toks, k);
                let is_float_reduce = REDUCERS.contains(&link.as_str())
                    && (turbofish.contains("f64") || turbofish.contains("f32"));
                let is_float_fold = link == "fold" && {
                    // Seed is the first argument; a leading `-` is fine.
                    let mut a = k + 1;
                    if toks.get(a).is_some_and(|t| t.is_punct('-')) {
                        a += 1;
                    }
                    matches!(toks.get(a), Some(FlatTok::Lit(l, _)) if float_literal(l))
                };
                if is_float_reduce || is_float_fold {
                    report(
                        ctx,
                        *link_span,
                        self.name(),
                        format!(
                            "float `{link}` over `.{source}()` of a keyed container; keyed iteration order is a \
                             determinism hazard for non-associative float addition — sort into a Vec first, or \
                             prove the container is a BTree type and annotate"
                        ),
                        out,
                    );
                }
                j = args_end;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// relaxed-atomics
// ---------------------------------------------------------------------------

/// `Ordering::Relaxed` permits reorderings that only show up under real
/// parallelism — exactly the regime sim code must never enter, so a Relaxed
/// atomic in sim scope is either dead weight or a latent race. The
/// single-threaded executor's observational counters carry explicit allows.
struct RelaxedAtomics;

impl Rule for RelaxedAtomics {
    fn name(&self) -> &'static str {
        "relaxed-atomics"
    }

    fn summary(&self) -> &'static str {
        "Ordering::Relaxed in sim scope hides latent races; use SeqCst or justify with an allow"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        for tok in &ctx.flat {
            if let FlatTok::Ident(name, span) = tok {
                if name == "Relaxed" {
                    report(
                        ctx,
                        *span,
                        self.name(),
                        "`Ordering::Relaxed` in simulation-scope code; use `SeqCst` (or justify the relaxation)"
                            .to_owned(),
                        out,
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// cross-shard-state
// ---------------------------------------------------------------------------

/// The sharded engine's only sanctioned cross-shard data path is the
/// deterministic merge channel (`ShardCtx::send` → per-`(src, dst, seq)`
/// ordered delivery): every event that crosses a shard boundary is
/// timestamped, sequence-numbered and merged in one fixed order. Shared
/// mutable state reachable from more than one shard — a lock type, or
/// interior mutability laundered through `Arc` — bypasses that merge
/// entirely, so mutation order depends on which worker thread gets there
/// first, which no digest can replay. (`Rc`/`RefCell` *within* one shard
/// are fine and idiomatic; shard roots must be `Send`, so the compiler
/// already keeps those from crossing. This rule guards the gap the type
/// system cannot see: `Send`-but-shared types.)
struct CrossShardState;

/// Lock types imply cross-thread mutation wherever they appear; the sim is
/// single-threaded per shard, so a lock in sim scope is either dead weight
/// or a merge bypass.
const LOCK_IDENTS: &[&str] = &["Mutex", "RwLock"];

/// Interior-mutability cells are only a hazard once something `Send`s them
/// across shards — which syntactically means an `Arc<…>` wrapper.
const CELL_IDENTS: &[&str] = &["Cell", "RefCell", "UnsafeCell"];

impl Rule for CrossShardState {
    fn name(&self) -> &'static str {
        "cross-shard-state"
    }

    fn summary(&self) -> &'static str {
        "locks and Arc-wrapped cells bypass the sharded engine's deterministic merge channels; cross-shard data rides ShardCtx::send"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let toks = &ctx.flat;
        for (i, tok) in toks.iter().enumerate() {
            let FlatTok::Ident(name, span) = tok else {
                continue;
            };
            if LOCK_IDENTS.contains(&name.as_str()) {
                report(
                    ctx,
                    *span,
                    self.name(),
                    format!(
                        "`{name}` in simulation-scope code: cross-shard mutation must flow through \
                         the deterministic merge channels (`ShardCtx::send`), not shared locks"
                    ),
                    out,
                );
            } else if name == "Arc" && toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
                self.scan_arc_args(ctx, toks, i + 1, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// memo-key
// ---------------------------------------------------------------------------

/// The transfer-memo key (`simnet::memo::MemoKey`) must capture every
/// input that can change a cached traversal's outcome. Two of them are
/// easy to drop silently in a refactor because nothing type-checks their
/// presence: the schedule-perturbation salt (a perturbed run resolves
/// same-instant tie-breaks differently, so a plan cached under one salt
/// is not valid evidence under another) and the fault-plane fingerprint
/// (an outcome cached fault-free must never replay under injected
/// faults, nor vice versa). Any `struct MemoKey` definition in
/// simulation scope must therefore declare both fields.
struct MemoKeyFields;

const MEMO_KEY_FIELDS: &[&str] = &["tie_salt", "fault_fp"];

impl Rule for MemoKeyFields {
    fn name(&self) -> &'static str {
        "memo-key"
    }

    fn summary(&self) -> &'static str {
        "a MemoKey struct must key the perturbation salt (tie_salt) and fault-plane state (fault_fp), or cached outcomes replay under the wrong regime"
    }

    fn check(&self, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let toks = &ctx.flat;
        for (i, tok) in toks.iter().enumerate() {
            let FlatTok::Ident(name, span) = tok else {
                continue;
            };
            if name != "MemoKey" || i == 0 || !toks[i - 1].is_ident("struct") {
                continue;
            }
            // Find the field block: the next brace group before any `;`.
            // A unit or tuple `MemoKey` cannot name its fields at all, so
            // it is missing both.
            let mut j = i + 1;
            let mut body = None;
            while j < toks.len() {
                match &toks[j] {
                    FlatTok::Open(Delimiter::Brace, _) => {
                        body = Some(j);
                        break;
                    }
                    FlatTok::Punct(';', _) => break,
                    FlatTok::Open(..) => {
                        j = skip_group(toks, j);
                        continue;
                    }
                    _ => {}
                }
                j += 1;
            }
            let missing: Vec<&str> = match body {
                Some(open) => {
                    let end = skip_group(toks, open);
                    MEMO_KEY_FIELDS
                        .iter()
                        .copied()
                        .filter(|f| !toks[open..end].iter().any(|t| t.is_ident(f)))
                        .collect()
                }
                None => MEMO_KEY_FIELDS.to_vec(),
            };
            if !missing.is_empty() {
                let fields = missing
                    .iter()
                    .map(|f| format!("`{f}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                report(
                    ctx,
                    *span,
                    self.name(),
                    format!(
                        "`struct MemoKey` does not key {fields}; a memo entry keyed without the \
                         perturbation salt and fault-plane fingerprint replays cached outcomes \
                         under the wrong simulation regime"
                    ),
                    out,
                );
            }
        }
    }
}

impl CrossShardState {
    /// Walk the angle-bracketed argument list starting at `open` (the `<`
    /// after `Arc`) looking for laundered interior mutability:
    /// `Arc<RefCell<_>>`, `Arc<Vec<Cell<_>>>`, …. Nested `()`/`[]`/`{}`
    /// groups are skipped whole (closure-trait arguments aren't shard
    /// state), and a `>` that is really the tail of a `->` arrow does not
    /// close the list.
    fn scan_arc_args(
        &self,
        ctx: &FileContext,
        toks: &[FlatTok],
        open: usize,
        out: &mut Vec<Diagnostic>,
    ) {
        let mut depth = 0i32;
        let mut j = open;
        while j < toks.len() {
            match &toks[j] {
                FlatTok::Punct('<', _) => depth += 1,
                FlatTok::Punct('>', _) => {
                    let arrow = j > 0 && toks[j - 1].is_punct('-');
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return;
                        }
                    }
                }
                // A statement boundary means this `<` was a comparison
                // after all, not a generic-argument list.
                FlatTok::Punct(';', _) => return,
                FlatTok::Open(..) => {
                    j = skip_group(toks, j);
                    continue;
                }
                FlatTok::Ident(inner, inner_span) if CELL_IDENTS.contains(&inner.as_str()) => {
                    report(
                        ctx,
                        *inner_span,
                        self.name(),
                        format!(
                            "`Arc<{inner}<_>>`-shaped state in simulation-scope code smuggles interior \
                             mutability across the `Send` boundary between shards; shard-crossing data \
                             must ride the deterministic merge channels (`ShardCtx::send`)"
                        ),
                        out,
                    );
                }
                _ => {}
            }
            j += 1;
        }
    }
}
