//! Pass 2c of the dataflow engine: static protocol-FSM conformance.
//!
//! Each fabric crate expresses its protocol state machine as one canonical
//! pure function:
//!
//! ```text
//! pub fn fsm_next(from: Phase, ev: Event) -> Option<Phase> {
//!     match (from, ev) {
//!         (Phase::A, Event::Go) => Some(Phase::B),
//!         (_, Event::Fatal)     => Some(Phase::Error),
//!         _ => None,
//!     }
//! }
//! ```
//!
//! and `simcheck` exports the transition table its runtime oracle enforces
//! as a `pub const NAME_FSM_TABLE: &[(&str, &str, &str)]` of
//! `(from, event, to)` rows, with `"*"` as the wildcard state. This pass
//! extracts both sides *from source tokens* — no compilation, no feature
//! flags — canonicalizes them to `(from, event, to)` string triples
//! (wildcard `_` ⇒ `"*"`), and set-diffs them:
//!
//! * a machine row missing from the table ⇒ **implemented-but-unchecked**
//!   (the oracle would wave through a transition the fabric performs);
//! * a table row missing from the machine ⇒ **checked-but-unreachable**
//!   (the oracle "verifies" behavior the fabric can no longer exhibit).
//!
//! Both directions are `fsm-drift` findings. A pair where *neither* side
//! is present in the analyzed file set is skipped (single-file CLI runs);
//! exactly one side present is itself drift.

use crate::{flatten, Diagnostic, FlatTok};

use proc_macro2::{Delimiter, TokenStream, TokenTree};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One `(from, event, to)` transition, canonical string form.
pub type Row = (String, String, String);

/// A fabric machine ↔ oracle table pairing.
pub struct FsmPair {
    /// Short id used in messages, e.g. "ib-qp".
    pub id: &'static str,
    /// Fabric crate directory (workspace-relative) holding `fsm_next`.
    pub fabric_dir: &'static str,
    /// The phase enum name — disambiguates if a crate ever grows a second
    /// `fsm_next`, and makes messages self-describing.
    pub phase_ty: &'static str,
    /// `pub const` table name exported by simcheck.
    pub table_name: &'static str,
    /// File (workspace-relative) the table lives in.
    pub table_file: &'static str,
}

/// The four fabric state machines and their simcheck oracle tables.
pub const FSM_PAIRS: &[FsmPair] = &[
    FsmPair {
        id: "ib-qp",
        fabric_dir: "crates/infiniband",
        phase_ty: "QpPhase",
        table_name: "QP_FSM_TABLE",
        table_file: "crates/simcheck/src/ib.rs",
    },
    FsmPair {
        id: "iwarp-rdmap",
        fabric_dir: "crates/iwarp",
        phase_ty: "StreamPhase",
        table_name: "RDMAP_FSM_TABLE",
        table_file: "crates/simcheck/src/iwarp.rs",
    },
    FsmPair {
        id: "ether-tcp",
        fabric_dir: "crates/etherstack",
        phase_ty: "TcpSendPhase",
        table_name: "TCP_FSM_TABLE",
        table_file: "crates/simcheck/src/ether.rs",
    },
    FsmPair {
        id: "mx-match",
        fabric_dir: "crates/mx10g",
        phase_ty: "MxSendPhase",
        table_name: "MX_FSM_TABLE",
        table_file: "crates/simcheck/src/mx.rs",
    },
];

/// Run the conformance pass over `(path, source)` pairs; append `fsm-drift`
/// findings to `diags`. Paths are matched workspace-relative against `root`.
pub fn fsm_pass(root: &Path, files: &[(PathBuf, String)], diags: &mut Vec<Diagnostic>) {
    for pair in FSM_PAIRS {
        check_pair(root, files, pair, diags);
    }
}

fn rel<'a>(root: &Path, file: &'a Path) -> &'a Path {
    file.strip_prefix(root).unwrap_or(file)
}

fn check_pair(
    root: &Path,
    files: &[(PathBuf, String)],
    pair: &FsmPair,
    diags: &mut Vec<Diagnostic>,
) {
    let machine = extract_machine(root, files, pair);
    let table = extract_table(root, files, pair);
    let (machine, table) = match (machine, table) {
        // Neither side in the analyzed set: the subsystem is out of view
        // (e.g. a single-file CLI run), not drifted.
        (None, None) => return,
        (Some(m), None) => {
            diags.push(Diagnostic {
                file: PathBuf::from(pair.table_file),
                line: 1,
                column: 0,
                rule: "fsm-drift",
                message: format!(
                    "{}: fabric machine `{}::fsm_next` has {} transitions but simcheck \
                     exports no `{}` table",
                    pair.id,
                    pair.phase_ty,
                    m.rows.len(),
                    pair.table_name
                ),
            });
            return;
        }
        (None, Some(t)) => {
            diags.push(Diagnostic {
                file: t.file,
                line: t.line,
                column: 0,
                rule: "fsm-drift",
                message: format!(
                    "{}: simcheck table `{}` has {} rows but no `fn fsm_next` over \
                     `{}` exists under {}",
                    pair.id,
                    pair.table_name,
                    t.rows.len(),
                    pair.phase_ty,
                    pair.fabric_dir
                ),
            });
            return;
        }
        (Some(m), Some(t)) => (m, t),
    };

    for row in machine.rows.difference(&table.rows) {
        diags.push(Diagnostic {
            file: machine.file.clone(),
            line: machine.line,
            column: 0,
            rule: "fsm-drift",
            message: format!(
                "{}: transition ({} --{}--> {}) is implemented by `{}::fsm_next` but \
                 unchecked: `{}` has no such row",
                pair.id, row.0, row.1, row.2, pair.phase_ty, pair.table_name
            ),
        });
    }
    for row in table.rows.difference(&machine.rows) {
        diags.push(Diagnostic {
            file: table.file.clone(),
            line: table.line,
            column: 0,
            rule: "fsm-drift",
            message: format!(
                "{}: table row ({} --{}--> {}) in `{}` is checked but unreachable: \
                 `{}::fsm_next` never performs it",
                pair.id, row.0, row.1, row.2, pair.table_name, pair.phase_ty
            ),
        });
    }
}

/// One extracted side: the rows plus where they came from (for anchoring).
struct Extracted {
    rows: BTreeSet<Row>,
    file: PathBuf,
    line: usize,
}

/// Find `fn fsm_next` under `pair.fabric_dir` whose tokens mention
/// `pair.phase_ty`, and extract its match-arm transition rows.
fn extract_machine(root: &Path, files: &[(PathBuf, String)], pair: &FsmPair) -> Option<Extracted> {
    for (path, src) in files {
        if !rel(root, path).starts_with(pair.fabric_dir) {
            continue;
        }
        let Ok(ast) = syn::parse_file(src) else {
            continue;
        };
        if let Some(found) = find_fsm_next(&ast.items, pair.phase_ty) {
            let rows = machine_rows(&found.tokens);
            return Some(Extracted {
                rows,
                file: path.clone(),
                line: found.span.start().line,
            });
        }
    }
    None
}

fn find_fsm_next<'a>(items: &'a [syn::Item], phase_ty: &str) -> Option<&'a syn::Item> {
    for item in items {
        if item.kind == syn::ItemKind::Fn
            && item.ident.as_ref().is_some_and(|i| *i == "fsm_next")
            && stream_mentions(&item.tokens, phase_ty)
        {
            return Some(item);
        }
        if let Some(found) = find_fsm_next(&item.sub_items, phase_ty) {
            return Some(found);
        }
    }
    None
}

fn stream_mentions(stream: &TokenStream, name: &str) -> bool {
    for tree in stream {
        match tree {
            TokenTree::Ident(i) if i == name => return true,
            TokenTree::Group(g) if stream_mentions(&g.stream(), name) => return true,
            _ => {}
        }
    }
    false
}

/// Extract `(from, event, to)` rows from an `fsm_next` body: the first
/// `match` keyword's brace group, arms split on depth-0 commas, each arm
/// `(FromPat, EvPat) => Some(Path)` (alternations with `|` allowed,
/// `_`-pattern or `None`-result arms contribute no rows).
fn machine_rows(tokens: &TokenStream) -> BTreeSet<Row> {
    let mut rows = BTreeSet::new();
    let Some(body) = match_body(tokens) else {
        return rows;
    };
    let mut flat = Vec::new();
    flatten(&body, &mut flat);
    for arm in split_depth0(&flat, ',') {
        // Split the arm at `=>`.
        let Some(at) = find_fat_arrow(&arm) else {
            continue;
        };
        let (pat, result) = (&arm[..at], &arm[at + 2..]);
        let Some(to) = result_state(result) else {
            continue; // `=> None`: an illegal transition, not a row
        };
        // Pattern side: one or more paren groups separated by `|`.
        for group in pattern_groups(pat) {
            let parts = split_depth0(&group, ',');
            if parts.len() != 2 {
                continue;
            }
            let (Some(from), Some(ev)) = (pattern_name(&parts[0]), pattern_name(&parts[1])) else {
                continue;
            };
            rows.insert((from, ev, to.clone()));
        }
    }
    rows
}

/// Locate the first `match` keyword and return its following brace group.
fn match_body(tokens: &TokenStream) -> Option<TokenStream> {
    let mut seen_match = false;
    for tree in tokens {
        match tree {
            TokenTree::Ident(i) if i == "match" => seen_match = true,
            TokenTree::Group(g) => {
                if seen_match && g.delimiter() == Delimiter::Brace {
                    return Some(g.stream());
                }
                if let Some(found) = match_body(&g.stream()) {
                    return Some(found);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split a flat token run on a punct at nesting depth 0.
fn split_depth0(toks: &[FlatTok], sep: char) -> Vec<Vec<FlatTok>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0usize;
    for t in toks {
        match t {
            FlatTok::Open(..) => {
                depth += 1;
                cur.push(t.clone());
            }
            FlatTok::Close(..) => {
                depth -= 1;
                cur.push(t.clone());
            }
            FlatTok::Punct(c, _) if *c == sep && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Index of the `=` in a depth-0 `=>` inside `arm`, or None.
fn find_fat_arrow(arm: &[FlatTok]) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in arm.iter().enumerate() {
        match t {
            FlatTok::Open(..) => depth += 1,
            FlatTok::Close(..) => depth -= 1,
            FlatTok::Punct('=', _)
                if depth == 0 && arm.get(i + 1).is_some_and(|t| t.is_punct('>')) =>
            {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

/// `Some ( Path :: To )` ⇒ `Some("To")`; `None` ⇒ None.
fn result_state(result: &[FlatTok]) -> Option<String> {
    if !result.first().is_some_and(|t| t.is_ident("Some")) {
        return None;
    }
    // Last ident inside the paren group is the target variant.
    let mut last = None;
    for t in result.iter().skip(1) {
        if let FlatTok::Ident(name, _) = t {
            last = Some(name.clone());
        }
    }
    last
}

/// The paren groups of a pattern run: `(A, B) | (A, C)` ⇒ both inner runs.
fn pattern_groups(pat: &[FlatTok]) -> Vec<Vec<FlatTok>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < pat.len() {
        if let FlatTok::Open(Delimiter::Parenthesis, _) = pat[i] {
            let end = crate::skip_group(pat, i);
            out.push(pat[i + 1..end - 1].to_vec());
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

/// Canonical name of one pattern slot: last ident of a path, or `"*"` for
/// the `_` wildcard.
fn pattern_name(toks: &[FlatTok]) -> Option<String> {
    let mut last = None;
    for t in toks {
        if let FlatTok::Ident(name, _) = t {
            if name == "_" {
                return Some("*".to_owned());
            }
            last = Some(name.clone());
        }
    }
    last
}

/// Find `pub const <table_name>` in `pair.table_file` and read its string
/// literals as `(from, event, to)` triples.
fn extract_table(root: &Path, files: &[(PathBuf, String)], pair: &FsmPair) -> Option<Extracted> {
    let (path, src) = files
        .iter()
        .find(|(p, _)| rel(root, p) == Path::new(pair.table_file))?;
    let ast = syn::parse_file(src).ok()?;
    let item = find_const(&ast.items, pair.table_name)?;
    let mut flat = Vec::new();
    flatten(&item.tokens, &mut flat);
    let strings: Vec<String> = flat
        .iter()
        .filter_map(|t| match t {
            FlatTok::Lit(text, _) if text.starts_with('"') && text.ends_with('"') => {
                Some(text[1..text.len() - 1].to_owned())
            }
            _ => None,
        })
        .collect();
    let mut rows = BTreeSet::new();
    for triple in strings.chunks_exact(3) {
        rows.insert((triple[0].clone(), triple[1].clone(), triple[2].clone()));
    }
    Some(Extracted {
        rows,
        file: path.clone(),
        line: item.span.start().line,
    })
}

fn find_const<'a>(items: &'a [syn::Item], name: &str) -> Option<&'a syn::Item> {
    for item in items {
        if item.kind == syn::ItemKind::Const && item.ident.as_ref().is_some_and(|i| *i == name) {
            return Some(item);
        }
        if let Some(found) = find_const(&item.sub_items, name) {
            return Some(found);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const MACHINE: &str = "\
pub enum QpPhase { Reset, Init, Error }\n\
pub enum QpEvent { BringUp, Fatal }\n\
pub fn fsm_next(from: QpPhase, ev: QpEvent) -> Option<QpPhase> {\n\
    match (from, ev) {\n\
        (QpPhase::Reset, QpEvent::BringUp) => Some(QpPhase::Init),\n\
        (_, QpEvent::Fatal) => Some(QpPhase::Error),\n\
        _ => None,\n\
    }\n\
}\n";

    fn table_src(rows: &str) -> String {
        format!("pub const QP_FSM_TABLE: &[(&str, &str, &str)] = &[{rows}];\n")
    }

    fn run(machine: &str, table: &str) -> Vec<Diagnostic> {
        let files = vec![
            (
                PathBuf::from("crates/infiniband/src/m.rs"),
                machine.to_owned(),
            ),
            (PathBuf::from("crates/simcheck/src/ib.rs"), table.to_owned()),
        ];
        let mut diags = Vec::new();
        fsm_pass(Path::new(""), &files, &mut diags);
        diags
    }

    #[test]
    fn matching_sides_report_no_drift() {
        let diags = run(
            MACHINE,
            &table_src(r#"("Reset", "BringUp", "Init"), ("*", "Fatal", "Error")"#),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn implemented_but_unchecked_is_drift() {
        let diags = run(MACHINE, &table_src(r#"("Reset", "BringUp", "Init")"#));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("implemented"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].message.contains("* --Fatal--> Error"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn checked_but_unreachable_is_drift() {
        let diags = run(
            MACHINE,
            &table_src(
                r#"("Reset", "BringUp", "Init"), ("*", "Fatal", "Error"), ("Init", "Warp", "Reset")"#,
            ),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("unreachable"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn one_missing_side_is_drift_both_absent_is_skipped() {
        let mut diags = Vec::new();
        let machine_only = vec![(
            PathBuf::from("crates/infiniband/src/m.rs"),
            MACHINE.to_owned(),
        )];
        fsm_pass(Path::new(""), &machine_only, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("exports no"),
            "{}",
            diags[0].message
        );

        let mut none = Vec::new();
        fsm_pass(Path::new(""), &[], &mut none);
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn alternation_patterns_expand_to_rows() {
        let machine = "\
pub fn fsm_next(from: QpPhase, ev: QpEvent) -> Option<QpPhase> {\n\
    match (from, ev) {\n\
        (QpPhase::Reset, QpEvent::BringUp) | (QpPhase::Init, QpEvent::BringUp) => Some(QpPhase::Init),\n\
        _ => None,\n\
    }\n\
}\n";
        let diags = run(
            machine,
            &table_src(r#"("Reset", "BringUp", "Init"), ("Init", "BringUp", "Init")"#),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
