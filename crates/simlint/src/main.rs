//! `simlint` CLI — lint the workspace's simulation-scope code for
//! determinism and simulation-safety violations.
//!
//! ```text
//! cargo run -p simlint --                    # lint the workspace, warn only
//! cargo run -p simlint -- --deny-all        # CI mode: nonzero exit on any finding
//! cargo run -p simlint -- --json            # one aggregate JSON document:
//!                                           #   files checked, per-rule
//!                                           #   violation/allow counts, and
//!                                           #   the diagnostics themselves
//! cargo run -p simlint -- --list-rules      # rule registry with summaries
//! cargo run -p simlint -- --audit-allows    # every inline allow: location,
//!                                           #   rules, justification, and
//!                                           #   whether it still suppresses
//!                                           #   anything (stale allows fail
//!                                           #   under --deny-all)
//! cargo run -p simlint -- path/to/file.rs   # lint explicit files (fixtures, spot checks)
//! cargo run -p simlint -- --dump file.rs    # debug: show the parsed item structure
//! ```

#![forbid(unsafe_code)]

use quote::ToTokens;
use simlint::rules::all_rules;
use simlint::{find_workspace_root, lint_source_stats, workspace_files, Allow, Diagnostic};

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    deny_all: bool,
    json: bool,
    list_rules: bool,
    audit_allows: bool,
    dump: Option<PathBuf>,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: simlint [--deny-all] [--json] [--list-rules] [--audit-allows] [--dump FILE] [--root DIR] [FILES...]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_all: false,
        json: false,
        list_rules: false,
        audit_allows: false,
        dump: None,
        root: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--audit-allows" => opts.audit_allows = true,
            "--dump" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--dump requires FILE".to_owned())?;
                opts.dump = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = args
                    .next()
                    .ok_or_else(|| "--root requires DIR".to_owned())?;
                opts.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage()));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        println!("simlint rules (all deny by default under --deny-all):");
        for rule in all_rules() {
            println!("  {:<18} {}", rule.name(), rule.summary());
        }
        println!(
            "\nsuppress in place with: // simlint: allow(rule-name) -- reason\n\
             engine diagnostics: parse-error, malformed-allow, unknown-rule, unused-allow"
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.dump {
        return dump_file(path);
    }

    let files = if opts.files.is_empty() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = match opts.root.clone().or_else(|| find_workspace_root(&cwd)) {
            Some(root) => root,
            None => {
                eprintln!("simlint: no workspace root found above {}", cwd.display());
                return ExitCode::from(2);
            }
        };
        match workspace_files(&root) {
            Ok(files) => files,
            Err(err) => {
                eprintln!("simlint: walking {}: {err}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        opts.files.clone()
    };

    let rules = all_rules();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut suppressed: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<(PathBuf, Allow)> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("simlint: reading {}: {err}", file.display());
                return ExitCode::from(2);
            }
        };
        checked += 1;
        let outcome = lint_source_stats(file, &src, &rules);
        diags.extend(outcome.diags);
        suppressed.extend(outcome.suppressed);
        allows.extend(outcome.allows.into_iter().map(|a| (file.clone(), a)));
    }

    if opts.audit_allows {
        return audit_allows(checked, &allows, opts.deny_all);
    }

    if opts.json {
        println!("{}", aggregate_json(checked, &diags, &suppressed));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!(
                "simlint: clean ({checked} files checked, {} rules)",
                rules.len()
            );
        } else {
            println!(
                "simlint: {} diagnostic{} across {checked} files",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
        }
    }

    if opts.deny_all && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--audit-allows`: print every inline allow annotation in scope — where
/// it is, which rules it waives, the mandatory justification, and whether
/// it still suppresses anything. The audit is how reviewers keep the waiver
/// set honest: every entry is a standing exception to a determinism rule,
/// so each one must still earn its reason. Stale (unused) allows fail the
/// run under `--deny-all`, same as the `unused-allow` diagnostic would.
fn audit_allows(checked: usize, allows: &[(PathBuf, Allow)], deny_all: bool) -> ExitCode {
    let stale = allows.iter().filter(|(_, a)| !a.used).count();
    println!(
        "simlint allow audit: {} annotation{} across {checked} files, {stale} stale",
        allows.len(),
        if allows.len() == 1 { "" } else { "s" },
    );
    for (file, a) in allows {
        println!(
            "  {}:{} {} allow({}) -- {}",
            file.display(),
            a.decl_line,
            if a.used { "used " } else { "STALE" },
            a.rules.join(", "),
            a.reason,
        );
    }
    if deny_all && stale > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Build the `--json` aggregate document: files checked, per-rule
/// violation/allow tallies (every registered rule appears, plus any engine
/// pseudo-rules that fired), and the surviving diagnostics verbatim.
fn aggregate_json(checked: usize, diags: &[Diagnostic], suppressed: &[Diagnostic]) -> String {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for rule in all_rules() {
        counts.insert(rule.name(), (0, 0));
    }
    for d in diags {
        counts.entry(d.rule).or_insert((0, 0)).0 += 1;
    }
    for d in suppressed {
        counts.entry(d.rule).or_insert((0, 0)).1 += 1;
    }
    let rules_json: Vec<String> = counts
        .iter()
        .map(|(rule, (violations, allows))| {
            format!(r#"    "{rule}": {{"violations": {violations}, "allows": {allows}}}"#)
        })
        .collect();
    let diags_json: Vec<String> = diags
        .iter()
        .map(|d| format!("    {}", d.to_json()))
        .collect();
    format!(
        "{{\n  \"files_checked\": {checked},\n  \"violations\": {},\n  \"allows\": {},\n  \"rules\": {{\n{}\n  }},\n  \"diagnostics\": [{}{}{}]\n}}",
        diags.len(),
        suppressed.len(),
        rules_json.join(",\n"),
        if diags_json.is_empty() { "" } else { "\n" },
        diags_json.join(",\n"),
        if diags_json.is_empty() { "" } else { "\n  " },
    )
}

/// Debug aid: show how the vendored `syn` split a file into items, with a
/// token-preview of each (rendered through `quote::ToTokens`).
fn dump_file(path: &Path) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("simlint: reading {}: {err}", path.display());
            return ExitCode::from(2);
        }
    };
    let file = match syn::parse_file(&src) {
        Ok(file) => file,
        Err(err) => {
            eprintln!("simlint: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}: {} top-level items", path.display(), file.items.len());
    for item in &file.items {
        dump_item(item, 1);
    }
    ExitCode::SUCCESS
}

fn dump_item(item: &syn::Item, depth: usize) {
    let name = item
        .ident
        .as_ref()
        .map_or_else(String::new, |i| format!(" {i}"));
    let preview: String = item
        .tokens
        .to_token_stream()
        .to_string()
        .chars()
        .take(60)
        .collect();
    println!(
        "{}{:?}{} @ {}:{}  {preview}",
        "  ".repeat(depth),
        item.kind,
        name,
        item.span.start().line,
        item.span.start().column,
    );
    for sub in &item.sub_items {
        dump_item(sub, depth + 1);
    }
}
