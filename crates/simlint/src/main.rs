//! `simlint` CLI — lint the workspace's simulation-scope code for
//! determinism and simulation-safety violations.
//!
//! ```text
//! cargo run -p simlint --                    # lint the workspace, warn only
//! cargo run -p simlint -- --deny-all        # CI mode: nonzero exit on any finding
//! cargo run -p simlint -- --dataflow        # also run the interprocedural
//!                                           #   passes: nondeterminism taint,
//!                                           #   hot-path panic audit, static
//!                                           #   FSM conformance — gated on the
//!                                           #   committed dataflow baseline
//! cargo run -p simlint -- --units           # also run the dimensional
//!                                           #   abstract interpretation pass
//!                                           #   (unit-mismatch, unit-arith,
//!                                           #   raw-quantity, lossy-time-cast)
//!                                           #   — gated on the committed
//!                                           #   units baseline
//! cargo run -p simlint -- --json            # one aggregate JSON document:
//!                                           #   files checked, per-rule
//!                                           #   violation/allow counts, and
//!                                           #   the diagnostics themselves
//! cargo run -p simlint -- --sarif FILE      # also write the findings as a
//!                                           #   SARIF 2.1.0 log (code-scanning
//!                                           #   UI ingestion)
//! cargo run -p simlint -- --dataflow --write-baseline
//!                                           # accept the current dataflow
//!                                           #   findings as the new baseline
//! cargo run -p simlint -- --baseline FILE   # override the baseline location
//! cargo run -p simlint -- --list-rules      # rule registry with summaries
//! cargo run -p simlint -- --audit-allows    # every inline allow: location,
//!                                           #   rules, justification, and
//!                                           #   whether it still suppresses
//!                                           #   anything (stale allows fail
//!                                           #   under --deny-all); with --json,
//!                                           #   a machine-readable tally for
//!                                           #   the CI no-regression check
//! cargo run -p simlint -- path/to/file.rs   # lint explicit files (fixtures, spot checks)
//! cargo run -p simlint -- --dump file.rs    # debug: show the parsed item structure
//! ```

#![forbid(unsafe_code)]

use quote::ToTokens;
use simlint::dataflow::{
    apply_baseline, dataflow_files, parse_baseline, render_baseline, run_dataflow, BASELINE_PATH,
    DATAFLOW_RULES,
};
use simlint::rules::all_rules;
use simlint::units::{render_units_baseline, run_units, UNITS_BASELINE_PATH, UNITS_RULES};
use simlint::{find_workspace_root, lint_source_stats, workspace_files, Allow, Diagnostic};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    deny_all: bool,
    json: bool,
    list_rules: bool,
    audit_allows: bool,
    dataflow: bool,
    units: bool,
    write_baseline: bool,
    baseline: Option<PathBuf>,
    sarif: Option<PathBuf>,
    dump: Option<PathBuf>,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: simlint [--deny-all] [--json] [--list-rules] [--audit-allows] [--dataflow] [--units] \
     [--baseline FILE] [--write-baseline] [--sarif FILE] [--dump FILE] [--root DIR] [FILES...]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_all: false,
        json: false,
        list_rules: false,
        audit_allows: false,
        dataflow: false,
        units: false,
        write_baseline: false,
        baseline: None,
        sarif: None,
        dump: None,
        root: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let path_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} requires a path argument"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--audit-allows" => opts.audit_allows = true,
            "--dataflow" => opts.dataflow = true,
            "--units" => opts.units = true,
            "--write-baseline" => opts.write_baseline = true,
            "--baseline" => opts.baseline = Some(path_arg(&mut args, "--baseline")?),
            "--sarif" => opts.sarif = Some(path_arg(&mut args, "--sarif")?),
            "--dump" => opts.dump = Some(path_arg(&mut args, "--dump")?),
            "--root" => opts.root = Some(path_arg(&mut args, "--root")?),
            "--help" | "-h" => return Err(usage().to_owned()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage()));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.write_baseline && !(opts.dataflow || opts.units) {
        return Err("--write-baseline requires --dataflow or --units".to_owned());
    }
    if opts.baseline.is_some() && opts.dataflow && opts.units {
        return Err(
            "--baseline overrides one file; with both --dataflow and --units use the \
             default per-layer locations"
                .to_owned(),
        );
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        println!("simlint rules (all deny by default under --deny-all):");
        for rule in all_rules() {
            println!("  {:<18} {}", rule.name(), rule.summary());
        }
        println!("\ninterprocedural rules (run with --dataflow):");
        for (name, summary) in DATAFLOW_RULES {
            println!("  {name:<18} {summary}");
        }
        println!("\ndimensional rules (run with --units):");
        for (name, summary) in UNITS_RULES {
            println!("  {name:<18} {summary}");
        }
        println!(
            "\nsuppress in place with: // simlint: allow(rule-name) -- reason\n\
             engine diagnostics: parse-error, malformed-allow, unknown-rule, unused-allow"
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.dump {
        return dump_file(path);
    }

    let cwd = std::env::current_dir().expect("cwd");
    let root = match opts.root.clone().or_else(|| find_workspace_root(&cwd)) {
        Some(root) => root,
        None => {
            eprintln!("simlint: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    let files = if opts.files.is_empty() {
        match workspace_files(&root) {
            Ok(files) => files,
            Err(err) => {
                eprintln!("simlint: walking {}: {err}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        opts.files.clone()
    };

    // --- classic per-file pass ---------------------------------------------
    let rules = all_rules();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut suppressed: Vec<Diagnostic> = Vec::new();
    let mut allows: Vec<(PathBuf, Allow)> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("simlint: reading {}: {err}", file.display());
                return ExitCode::from(2);
            }
        };
        checked += 1;
        let outcome = lint_source_stats(file, &src, &rules);
        diags.extend(outcome.diags);
        suppressed.extend(outcome.suppressed);
        allows.extend(outcome.allows.into_iter().map(|a| (file.clone(), a)));
    }

    if opts.audit_allows {
        return audit_allows(checked, &allows, opts.deny_all, opts.json);
    }

    // --- interprocedural passes + per-layer baseline gates -----------------
    let mut stale_baseline: Vec<String> = Vec::new();
    let mut baselined = 0usize;
    if opts.dataflow || opts.units {
        // Workspace runs widen the file set (simcheck tables, bench
        // helpers); explicit-FILES runs analyze exactly what was given so
        // fixtures stay self-contained.
        let layer_inputs = if opts.files.is_empty() {
            match dataflow_files(&root) {
                Ok(pairs) => pairs,
                Err(err) => {
                    eprintln!("simlint: reading dataflow scope: {err}");
                    return ExitCode::from(2);
                }
            }
        } else {
            let mut pairs = Vec::new();
            for file in &files {
                match std::fs::read_to_string(file) {
                    Ok(src) => pairs.push((file.clone(), src)),
                    Err(err) => {
                        eprintln!("simlint: reading {}: {err}", file.display());
                        return ExitCode::from(2);
                    }
                }
            }
            pairs
        };
        // Each layer runs independently against its own committed baseline
        // (`--baseline` overrides whichever single layer is active).
        let mut layers: Vec<(simlint::dataflow::DataflowOutcome, PathBuf, String)> = Vec::new();
        if opts.dataflow {
            let outcome = run_dataflow(&root, &layer_inputs);
            let path = opts
                .baseline
                .clone()
                .unwrap_or_else(|| root.join(BASELINE_PATH));
            let text = render_baseline(&root, &outcome.diags);
            layers.push((outcome, path, text));
        }
        if opts.units {
            let outcome = run_units(&root, &layer_inputs);
            let path = opts
                .baseline
                .clone()
                .unwrap_or_else(|| root.join(UNITS_BASELINE_PATH));
            let text = render_units_baseline(&root, &outcome.diags);
            layers.push((outcome, path, text));
        }
        for (outcome, baseline_path, rendered) in layers {
            suppressed.extend(outcome.suppressed);
            if opts.write_baseline {
                if let Err(err) = std::fs::write(&baseline_path, &rendered) {
                    eprintln!("simlint: writing {}: {err}", baseline_path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "simlint: wrote {} finding{} to {}",
                    outcome.diags.len(),
                    if outcome.diags.len() == 1 { "" } else { "s" },
                    baseline_path.display()
                );
                continue;
            }
            let baseline = match std::fs::read_to_string(&baseline_path) {
                Ok(text) => parse_baseline(&text),
                Err(_) => Vec::new(), // no baseline file: everything is new
            };
            let (fresh, matched, stale) = apply_baseline(&root, outcome.diags, &baseline);
            baselined += matched;
            stale_baseline.extend(stale);
            diags.extend(fresh);
        }
        if opts.write_baseline {
            return ExitCode::SUCCESS;
        }
    }

    // One bad directive or one finding must report once even when both
    // layers walked the same file (dedupe satellite, ISSUE 8).
    diags.sort();
    diags.dedup();
    suppressed.sort();
    suppressed.dedup();

    if let Some(sarif_path) = &opts.sarif {
        let mut summaries: BTreeMap<&'static str, &'static str> = BTreeMap::new();
        for rule in &rules {
            summaries.insert(rule.name(), rule.summary());
        }
        for (name, summary) in DATAFLOW_RULES {
            summaries.insert(name, summary);
        }
        for (name, summary) in UNITS_RULES {
            summaries.insert(name, summary);
        }
        let sarif = simlint::sarif::to_sarif(&root, &diags, &summaries);
        if let Err(err) = std::fs::write(sarif_path, &sarif) {
            eprintln!("simlint: writing {}: {err}", sarif_path.display());
            return ExitCode::from(2);
        }
    }

    if opts.json {
        println!(
            "{}",
            aggregate_json(
                checked,
                &diags,
                &suppressed,
                opts.dataflow,
                opts.units,
                baselined,
            )
        );
    } else {
        for d in &diags {
            println!("{d}");
        }
        for fp in &stale_baseline {
            println!("simlint: stale baseline entry (finding no longer occurs): {fp}");
        }
        if diags.is_empty() {
            let mut passes = String::new();
            if opts.dataflow {
                passes.push_str(&format!(", {} dataflow rules", DATAFLOW_RULES.len()));
            }
            if opts.units {
                passes.push_str(&format!(", {} units rules", UNITS_RULES.len()));
            }
            if opts.dataflow || opts.units {
                passes.push_str(&format!(", {baselined} baselined"));
            }
            println!(
                "simlint: clean ({checked} files checked, {} rules{passes})",
                rules.len()
            );
        } else {
            println!(
                "simlint: {} diagnostic{} across {checked} files",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
        }
    }

    if opts.deny_all && !(diags.is_empty() && stale_baseline.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--audit-allows`: print every inline allow annotation in scope — where
/// it is, which rules it waives, the mandatory justification, and whether
/// it still suppresses anything. The audit is how reviewers keep the waiver
/// set honest: every entry is a standing exception to a determinism rule,
/// so each one must still earn its reason. Stale (unused) allows fail the
/// run under `--deny-all`, same as the `unused-allow` diagnostic would.
/// With `--json`, emits the tally CI tracks for allow-count no-regression
/// (annotations naming dataflow rules are counted but never stale here —
/// their usage is resolved by the `--dataflow` layer).
fn audit_allows(
    checked: usize,
    allows: &[(PathBuf, Allow)],
    deny_all: bool,
    json: bool,
) -> ExitCode {
    let is_dataflow_only = |a: &Allow| {
        a.rules
            .iter()
            .all(|r| simlint::dataflow::is_dataflow_rule(r) || simlint::units::is_units_rule(r))
    };
    let stale = allows
        .iter()
        .filter(|(_, a)| !a.used && !is_dataflow_only(a))
        .count();
    if json {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for (_, a) in allows {
            for rule in &a.rules {
                *by_rule.entry(rule.as_str()).or_default() += 1;
            }
        }
        let rules_json: Vec<String> = by_rule
            .iter()
            .map(|(rule, n)| format!(r#"    "{rule}": {n}"#))
            .collect();
        println!(
            "{{\n  \"files_checked\": {checked},\n  \"allows\": {},\n  \"stale\": {stale},\n  \"by_rule\": {{\n{}\n  }}\n}}",
            allows.len(),
            rules_json.join(",\n"),
        );
    } else {
        println!(
            "simlint allow audit: {} annotation{} across {checked} files, {stale} stale",
            allows.len(),
            if allows.len() == 1 { "" } else { "s" },
        );
        for (file, a) in allows {
            let state = if a.used {
                "used "
            } else if is_dataflow_only(a) {
                "defer" // resolved by the --dataflow layer
            } else {
                "STALE"
            };
            println!(
                "  {}:{} {} allow({}) -- {}",
                file.display(),
                a.decl_line,
                state,
                a.rules.join(", "),
                a.reason,
            );
        }
    }
    if deny_all && stale > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Build the `--json` aggregate document: files checked, per-rule
/// violation/allow tallies (every registered rule appears, plus any engine
/// pseudo-rules that fired), and the surviving diagnostics verbatim.
fn aggregate_json(
    checked: usize,
    diags: &[Diagnostic],
    suppressed: &[Diagnostic],
    dataflow: bool,
    units: bool,
    baselined: usize,
) -> String {
    let mut counts: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for rule in all_rules() {
        counts.insert(rule.name(), (0, 0));
    }
    if dataflow {
        for (name, _) in DATAFLOW_RULES {
            counts.insert(name, (0, 0));
        }
    }
    if units {
        for (name, _) in UNITS_RULES {
            counts.insert(name, (0, 0));
        }
    }
    for d in diags {
        counts.entry(d.rule).or_insert((0, 0)).0 += 1;
    }
    for d in suppressed {
        counts.entry(d.rule).or_insert((0, 0)).1 += 1;
    }
    let rules_json: Vec<String> = counts
        .iter()
        .map(|(rule, (violations, allows))| {
            format!(r#"    "{rule}": {{"violations": {violations}, "allows": {allows}}}"#)
        })
        .collect();
    let diags_json: Vec<String> = diags
        .iter()
        .map(|d| format!("    {}", d.to_json()))
        .collect();
    let baseline_field = if dataflow || units {
        format!("\n  \"baselined\": {baselined},")
    } else {
        String::new()
    };
    format!(
        "{{\n  \"files_checked\": {checked},{baseline_field}\n  \"violations\": {},\n  \"allows\": {},\n  \"rules\": {{\n{}\n  }},\n  \"diagnostics\": [{}{}{}]\n}}",
        diags.len(),
        suppressed.len(),
        rules_json.join(",\n"),
        if diags_json.is_empty() { "" } else { "\n" },
        diags_json.join(",\n"),
        if diags_json.is_empty() { "" } else { "\n  " },
    )
}

/// Debug aid: show how the vendored `syn` split a file into items, with a
/// token-preview of each (rendered through `quote::ToTokens`).
fn dump_file(path: &Path) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("simlint: reading {}: {err}", path.display());
            return ExitCode::from(2);
        }
    };
    let file = match syn::parse_file(&src) {
        Ok(file) => file,
        Err(err) => {
            eprintln!("simlint: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}: {} top-level items", path.display(), file.items.len());
    for item in &file.items {
        dump_item(item, 1);
    }
    ExitCode::SUCCESS
}

fn dump_item(item: &syn::Item, depth: usize) {
    let name = item
        .ident
        .as_ref()
        .map_or_else(String::new, |i| format!(" {i}"));
    let preview: String = item
        .tokens
        .to_token_stream()
        .to_string()
        .chars()
        .take(60)
        .collect();
    println!(
        "{}{:?}{} @ {}:{}  {preview}",
        "  ".repeat(depth),
        item.kind,
        name,
        item.span.start().line,
        item.span.start().column,
    );
    for sub in &item.sub_items {
        dump_item(sub, depth + 1);
    }
}
