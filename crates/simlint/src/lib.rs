//! # simlint — workspace determinism & simulation-safety lint pass
//!
//! The figures this repository reproduces are only comparable across runs
//! because every simulation is bit-for-bit deterministic: the DES core
//! promises that two runs of the same program produce identical event
//! orderings, and `results/fig1.sha256` pins the output of the cheapest
//! end-to-end figure. That digest is an *after-the-fact* net. `simlint` is
//! the static half: a `syn`-based AST walker over the simulation crates that
//! rejects the classic determinism killers before they compile —
//! hash-ordered iteration, wall-clock reads, thread spawns, unseeded RNGs,
//! float accumulation over unordered iterators, and `Ordering::Relaxed`
//! atomics.
//!
//! ## How it works
//!
//! Each file is lexed by the vendored `proc-macro2` and split into spanned
//! items by the vendored `syn`; rules then walk a flattened token sequence
//! ([`FlatTok`]) with pattern helpers. Rules are deliberately *syntactic*:
//! they key on names and token shapes (`HashMap`, `std :: time`,
//! `.values().sum::<f64>()`) rather than resolved types, so a determined
//! author can evade them with renames — the point is to make the safe thing
//! the path of least resistance and the unsafe thing loud, not to sandbox
//! adversaries.
//!
//! ## Allow-list annotations
//!
//! A violation that is genuinely justified is suppressed in place:
//!
//! ```text
//! // simlint: allow(relaxed-atomics) -- single-threaded executor, counters only
//! ```
//!
//! A trailing annotation (code before the `//` on the same line) applies to
//! its own line; an annotation on a line of its own applies to the next
//! line. The `-- reason` clause is mandatory (`malformed-allow` otherwise),
//! unknown rule names are themselves diagnostics (`unknown-rule`), and an
//! annotation that suppresses nothing is reported as `unused-allow` so stale
//! exemptions cannot accumulate.

#![forbid(unsafe_code)]

use proc_macro2::{Delimiter, Span, TokenStream, TokenTree};

use std::fmt;
use std::path::{Path, PathBuf};

pub mod dataflow;
pub mod fsm;
pub mod graph;
pub mod rules;
pub mod sarif;
pub mod taint;
pub mod units;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// A single finding, anchored to a 1-based line and 0-based column.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: usize,
    pub column: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: deny({}): {}",
            self.file.display(),
            self.line,
            self.column,
            self.rule,
            self.message
        )
    }
}

impl Diagnostic {
    /// One-object-per-line JSON, for machine consumption (`--json`).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":"{}","line":{},"column":{},"rule":"{}","message":"{}"}}"#,
            json_escape(&self.file.display().to_string()),
            self.line,
            self.column,
            json_escape(self.rule),
            json_escape(&self.message)
        )
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Flattened tokens
// ---------------------------------------------------------------------------

/// A linearized token: groups become balanced `Open`/`Close` markers so
/// rules can scan sibling runs and skip nested argument lists cheaply.
#[derive(Debug, Clone)]
pub enum FlatTok {
    Ident(String, Span),
    Punct(char, Span),
    Lit(String, Span),
    Open(Delimiter, Span),
    Close(Delimiter, Span),
}

impl FlatTok {
    pub fn span(&self) -> Span {
        match self {
            FlatTok::Ident(_, s)
            | FlatTok::Punct(_, s)
            | FlatTok::Lit(_, s)
            | FlatTok::Open(_, s)
            | FlatTok::Close(_, s) => *s,
        }
    }

    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, FlatTok::Ident(s, _) if s == name)
    }

    pub fn is_punct(&self, ch: char) -> bool {
        matches!(self, FlatTok::Punct(c, _) if *c == ch)
    }
}

/// Flatten a token stream depth-first into a balanced [`FlatTok`] sequence.
pub fn flatten(stream: &TokenStream, out: &mut Vec<FlatTok>) {
    for tree in stream {
        match tree {
            TokenTree::Ident(i) => out.push(FlatTok::Ident(i.to_string(), i.span())),
            TokenTree::Punct(p) => out.push(FlatTok::Punct(p.as_char(), p.span())),
            TokenTree::Literal(l) => out.push(FlatTok::Lit(l.to_string(), l.span())),
            TokenTree::Group(g) => {
                out.push(FlatTok::Open(g.delimiter(), g.span()));
                flatten(&g.stream(), out);
                out.push(FlatTok::Close(g.delimiter(), g.span()));
            }
        }
    }
}

/// True when `toks[i..]` spells the `::`-separated path `segs` (e.g.
/// `["std", "time"]` matches `std :: time`). Each separator is the two
/// `:` puncts the lexer produces.
pub fn path_at(toks: &[FlatTok], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(seg)) {
            return false;
        }
        j += 1;
    }
    true
}

/// Given `toks[i]` = `Open`, return the index just past its matching
/// `Close`. The flattener guarantees balance.
pub fn skip_group(toks: &[FlatTok], i: usize) -> usize {
    debug_assert!(matches!(toks[i], FlatTok::Open(..)));
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        match toks[j] {
            FlatTok::Open(..) => depth += 1,
            FlatTok::Close(..) => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

// ---------------------------------------------------------------------------
// Allow-list annotations
// ---------------------------------------------------------------------------

/// One parsed `// simlint: allow(rule, …) -- reason` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment itself sits on (1-based).
    pub decl_line: usize,
    /// Line whose diagnostics it suppresses.
    pub target_line: usize,
    pub rules: Vec<String>,
    /// The mandatory `-- reason` justification text, verbatim.
    pub reason: String,
    pub used: bool,
}

/// Scan raw source lines for annotations. Malformed or unknown-rule
/// annotations are reported immediately and register no suppression.
pub fn parse_allows(
    file: &Path,
    src: &str,
    known_rules: &[&'static str],
    diags: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let Some(comment_start) = line.find("//") else {
            continue;
        };
        let comment = &line[comment_start..];
        let Some(directive_at) = comment.find("simlint:") else {
            continue;
        };
        let column = comment_start + directive_at;
        let directive = comment[directive_at + "simlint:".len()..].trim_start();
        let Some(rest) = directive.strip_prefix("allow") else {
            diags.push(Diagnostic {
                file: file.to_owned(),
                line: lineno,
                column,
                rule: "malformed-allow",
                message: format!(
                    "unrecognized simlint directive {:?}; expected `simlint: allow(rule) -- reason`",
                    directive.split_whitespace().next().unwrap_or("")
                ),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (rule_list, after) = match rest.strip_prefix('(').and_then(|r| {
            r.find(')')
                .map(|close| (&r[..close], r[close + 1..].trim_start()))
        }) {
            Some(parts) => parts,
            None => {
                diags.push(Diagnostic {
                    file: file.to_owned(),
                    line: lineno,
                    column,
                    rule: "malformed-allow",
                    message: "missing `(rule-name)` list in simlint allow".to_owned(),
                });
                continue;
            }
        };
        if !after.starts_with("--") || after[2..].trim().is_empty() {
            diags.push(Diagnostic {
                file: file.to_owned(),
                line: lineno,
                column,
                rule: "malformed-allow",
                message: "simlint allow requires a justification: `-- reason`".to_owned(),
            });
            continue;
        }
        let mut rule_names = Vec::new();
        let mut bad = false;
        for name in rule_list.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            if known_rules.contains(&name) {
                rule_names.push(name.to_owned());
            } else {
                bad = true;
                diags.push(Diagnostic {
                    file: file.to_owned(),
                    line: lineno,
                    column,
                    rule: "unknown-rule",
                    message: format!(
                        "simlint allow names unknown rule {name:?} (see `simlint --list-rules`)"
                    ),
                });
            }
        }
        if bad || rule_names.is_empty() {
            continue;
        }
        // A trailing annotation (code before the comment) covers its own
        // line; a whole-line annotation covers the next line.
        let has_code_before = !line[..comment_start].trim().is_empty();
        let target_line = if has_code_before { lineno } else { lineno + 1 };
        allows.push(Allow {
            decl_line: lineno,
            target_line,
            rules: rule_names,
            reason: after[2..].trim().to_owned(),
            used: false,
        });
    }
    allows
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Everything a rule gets to look at for one file.
pub struct FileContext {
    pub file: PathBuf,
    pub ast: syn::File,
    pub flat: Vec<FlatTok>,
}

/// Outcome of linting one file: surviving diagnostics plus the findings an
/// in-place `simlint: allow` annotation suppressed (kept so reports can
/// tally per-rule allow counts — a suppression is policy, not silence).
pub struct LintOutcome {
    pub diags: Vec<Diagnostic>,
    pub suppressed: Vec<Diagnostic>,
    /// Every well-formed allow annotation in the file, with its `used`
    /// flag resolved — the raw material for `simlint --audit-allows`.
    pub allows: Vec<Allow>,
}

/// Lint one in-memory source file with the given rules. Returned
/// diagnostics are sorted and deduplicated (one report per rule per line).
pub fn lint_source(path: &Path, src: &str, rules: &[Box<dyn rules::Rule>]) -> Vec<Diagnostic> {
    lint_source_stats(path, src, rules).diags
}

/// Like [`lint_source`], but also reports which findings were suppressed by
/// allow annotations.
pub fn lint_source_stats(path: &Path, src: &str, rules: &[Box<dyn rules::Rule>]) -> LintOutcome {
    // The dataflow- and units-layer rule names are always legal in allow
    // annotations, even in a classic-only run: the annotation's *validity*
    // must not depend on which layer happens to be executing.
    let mut known: Vec<&'static str> = rules.iter().map(|r| r.name()).collect();
    known.extend(dataflow::DATAFLOW_RULES.iter().map(|(n, _)| *n));
    known.extend(units::UNITS_RULES.iter().map(|(n, _)| *n));
    let mut diags = Vec::new();
    let mut suppressed = Vec::new();
    let mut allows = parse_allows(path, src, &known, &mut diags);

    let ast = match syn::parse_file(src) {
        Ok(ast) => ast,
        Err(err) => {
            diags.push(Diagnostic {
                file: path.to_owned(),
                line: err.span().start().line,
                column: err.span().start().column,
                rule: "parse-error",
                message: err.to_string(),
            });
            return LintOutcome {
                diags,
                suppressed,
                allows,
            };
        }
    };
    // `all_tokens` includes inner attributes, so a `#![…]` naming a banned
    // symbol is walked like any other code.
    let mut flat = Vec::new();
    flatten(&ast.all_tokens(), &mut flat);
    let ctx = FileContext {
        file: path.to_owned(),
        ast,
        flat,
    };

    let mut found = Vec::new();
    for rule in rules {
        rule.check(&ctx, &mut found);
    }
    found.sort();
    found.dedup_by(|a, b| a.rule == b.rule && a.line == b.line && a.file == b.file);

    // Apply suppressions.
    for d in found {
        let hit = allows.iter_mut().any(|a| {
            let hit = a.target_line == d.line && a.rules.iter().any(|r| r == d.rule);
            if hit {
                a.used = true;
            }
            hit
        });
        if hit {
            suppressed.push(d);
        } else {
            diags.push(d);
        }
    }
    for a in &allows {
        // Annotations naming any dataflow or units rule are audited by
        // those layers instead (`run_dataflow`/`run_units` re-check their
        // usage); flagging them unused here would force-fail every
        // justified suppression.
        if !a.used
            && !a
                .rules
                .iter()
                .any(|r| dataflow::is_dataflow_rule(r) || units::is_units_rule(r))
        {
            diags.push(Diagnostic {
                file: path.to_owned(),
                line: a.decl_line,
                column: 0,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing on line {}; remove the stale annotation",
                    a.rules.join(", "),
                    a.target_line
                ),
            });
        }
    }
    diags.sort();
    suppressed.sort();
    LintOutcome {
        diags,
        suppressed,
        allows,
    }
}

/// Directories (workspace-relative) holding simulation-scope code: the DES
/// core, the fabric models, the benchmark *logic*, integration tests and
/// examples. `crates/bench` (wall-clock harness: it times figure generation
/// and fans out OS threads by design), `crates/simlint` (this tool) and
/// `vendor/` (offline API stand-ins) are deliberately out of scope —
/// see DESIGN.md "Determinism invariants".
pub const SIM_SCOPE: &[&str] = &[
    "crates/simnet",
    "crates/hostmodel",
    "crates/etherstack",
    "crates/iwarp",
    "crates/infiniband",
    "crates/mx10g",
    "crates/mpisim",
    "crates/udapl",
    "crates/core",
    "src",
    "tests",
    "examples",
];

/// Collect every `.rs` file under the simulation scope of `root`, sorted
/// for deterministic traversal (simlint holds itself to its own rules).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for dir in SIM_SCOPE {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs(&base, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing_variants() {
        let src = "\
let x = 1; // simlint: allow(wall-clock) -- trailing
// simlint: allow(relaxed-atomics, thread-spawn) -- whole line
let y = 2;
// simlint: allow(wall-clock)
// simlint: deny(wall-clock) -- nonsense
// simlint: allow(no-such-rule) -- typo
";
        let mut diags = Vec::new();
        let allows = parse_allows(
            Path::new("t.rs"),
            src,
            &["wall-clock", "relaxed-atomics", "thread-spawn"],
            &mut diags,
        );
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].target_line, 1, "trailing covers its own line");
        assert_eq!(allows[0].reason, "trailing");
        assert_eq!(allows[1].target_line, 3, "whole-line covers the next line");
        assert_eq!(allows[1].rules.len(), 2);
        assert_eq!(allows[1].reason, "whole line");
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            ["malformed-allow", "malformed-allow", "unknown-rule"]
        );
    }

    #[test]
    fn path_matching() {
        let stream: TokenStream = "std::time::Instant::now()".parse().expect("lexes");
        let mut flat = Vec::new();
        flatten(&stream, &mut flat);
        assert!(path_at(&flat, 0, &["std", "time"]));
        assert!(path_at(&flat, 0, &["std", "time", "Instant"]));
        assert!(!path_at(&flat, 0, &["std", "thread"]));
    }

    #[test]
    fn skip_group_is_balanced() {
        let stream: TokenStream = "f(a, (b, c))[d]".parse().expect("lexes");
        let mut flat = Vec::new();
        flatten(&stream, &mut flat);
        // flat: f ( a , ( b , c ) ) [ d ]
        let after_call = skip_group(&flat, 1);
        assert!(matches!(
            flat[after_call],
            FlatTok::Open(Delimiter::Bracket, _)
        ));
    }
}
