//! Integration tests for the `--dataflow` layer: fixture trigger/ok pairs
//! per interprocedural rule, cross-crate call-graph resolution, the
//! committed-baseline byte-identity gate, SARIF rendering, and CLI-level
//! engine-diagnostic dedupe.
//!
//! Fixture files live under `tests/fixtures/dataflow/`. Their on-disk paths
//! start with `crates/simlint/…`, which is deliberately *outside*
//! [`simlint::SIM_SCOPE`] — so each test reads the fixture *content* from
//! disk and pairs it with a virtual sim-scope path (e.g.
//! `crates/simnet/src/fixture.rs`) before handing it to the engine. That
//! keeps the fixtures inert for workspace-wide runs while still exercising
//! the exact scope logic production files hit.

use simlint::dataflow::{run_dataflow, BASELINE_PATH, DATAFLOW_RULES};
use simlint::graph::build_index;
use simlint::{find_workspace_root, Diagnostic};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/dataflow")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("reading fixture {}: {err}", path.display()))
}

/// Run the dataflow engine over fixture contents mounted at virtual
/// sim-scope paths.
fn run_virtual(files: &[(&str, String)]) -> Vec<Diagnostic> {
    let owned: Vec<(PathBuf, String)> = files
        .iter()
        .map(|(p, s)| (PathBuf::from(p), s.clone()))
        .collect();
    run_dataflow(Path::new(""), &owned).diags
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------------------
// taint-through-call
// ---------------------------------------------------------------------------

#[test]
fn taint_fixture_trigger_is_caught_through_one_call_indirection() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("taint_indirect_trigger.rs"),
    )]);
    assert_eq!(rules_of(&diags), ["taint-through-call"], "{diags:?}");
    assert!(
        diags[0].message.contains("`schedule` -> `jitter_ns`"),
        "witness chain must name the indirection: {}",
        diags[0].message
    );
    assert!(diags[0].message.contains("Instant"), "{}", diags[0].message);
}

#[test]
fn taint_fixture_ok_twin_is_clean() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("taint_indirect_ok.rs"),
    )]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

#[test]
fn panic_path_fixture_trigger_flags_unwrap_behind_transfer() {
    let diags = run_virtual(&[(
        "crates/iwarp/src/fixture.rs",
        fixture("panic_path_trigger.rs"),
    )]);
    assert_eq!(rules_of(&diags), ["panic-path"], "{diags:?}");
    assert!(
        diags[0].message.contains("`transfer` -> `deliver`"),
        "entry chain must be reported: {}",
        diags[0].message
    );
}

#[test]
fn panic_path_fixture_ok_twin_is_clean() {
    let diags = run_virtual(&[("crates/iwarp/src/fixture.rs", fixture("panic_path_ok.rs"))]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// fsm-drift
// ---------------------------------------------------------------------------

#[test]
fn fsm_fixture_trigger_reports_implemented_but_unchecked_row() {
    let diags = run_virtual(&[
        (
            "crates/infiniband/src/fixture.rs",
            fixture("fsm_drift_machine_trigger.rs"),
        ),
        ("crates/simcheck/src/ib.rs", fixture("fsm_drift_table.rs")),
    ]);
    assert_eq!(rules_of(&diags), ["fsm-drift"], "{diags:?}");
    assert!(
        diags[0].message.contains("Error --Reopen--> Init"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0]
            .message
            .contains("implemented by `QpPhase::fsm_next`"),
        "{}",
        diags[0].message
    );
}

#[test]
fn fsm_fixture_ok_twin_is_clean() {
    let diags = run_virtual(&[
        (
            "crates/infiniband/src/fixture.rs",
            fixture("fsm_drift_machine_ok.rs"),
        ),
        ("crates/simcheck/src/ib.rs", fixture("fsm_drift_table.rs")),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// call graph across a synthetic two-crate tree
// ---------------------------------------------------------------------------

#[test]
fn call_graph_resolves_names_across_crates() {
    let files = vec![
        (
            PathBuf::from("crates/infiniband/src/verbs.rs"),
            "pub fn post(&self) { helper(); stamp(); }\n".to_owned(),
        ),
        (
            PathBuf::from("crates/simnet/src/util.rs"),
            "pub fn helper() {}\npub fn stamp() -> u64 { 0 }\n".to_owned(),
        ),
    ];
    let index = build_index(&files, &mut Vec::new());
    assert_eq!(index.fns.len(), 3);
    let post = &index.fns[index.defs("post")[0]];
    let callees: Vec<&str> = post.calls.iter().map(|c| c.callee.as_str()).collect();
    assert_eq!(callees, ["helper", "stamp"]);
    // Both callees resolve to definitions in the *other* crate: the index
    // is workspace-global, not per-file.
    assert_eq!(index.defs("helper").len(), 1);
    assert_eq!(
        index.fns[index.defs("helper")[0]].file,
        PathBuf::from("crates/simnet/src/util.rs")
    );
}

#[test]
fn taint_fixed_point_crosses_crate_boundary() {
    let diags = run_virtual(&[
        (
            "crates/mpisim/src/collect.rs",
            "pub fn gather(sim: &Sim) { let s = seed(); sim.spawn(s); }\n".to_owned(),
        ),
        (
            "crates/hostmodel/src/rng.rs",
            "pub fn seed() -> u64 { getrandom() }\n".to_owned(),
        ),
    ]);
    assert_eq!(rules_of(&diags), ["taint-through-call"], "{diags:?}");
    assert!(
        diags[0].message.contains("`gather` -> `seed`"),
        "{}",
        diags[0].message
    );
}

// ---------------------------------------------------------------------------
// committed baseline: byte identity against a real workspace run
// ---------------------------------------------------------------------------

#[test]
fn workspace_dataflow_run_reproduces_committed_baseline_bytes() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest).expect("workspace root above simlint");
    let files = simlint::dataflow::dataflow_files(&root).expect("collect dataflow scope");
    assert!(
        files.len() > 50,
        "dataflow scope should cover the workspace, got {} files",
        files.len()
    );
    let outcome = run_dataflow(&root, &files);
    let rendered = simlint::dataflow::render_baseline(&root, &outcome.diags);
    let committed =
        std::fs::read_to_string(root.join(BASELINE_PATH)).expect("committed baseline file");
    assert_eq!(
        rendered, committed,
        "workspace findings drifted from crates/simlint/dataflow.baseline; \
         fix the finding or regenerate with --dataflow --write-baseline"
    );
}

// ---------------------------------------------------------------------------
// SARIF
// ---------------------------------------------------------------------------

#[test]
fn sarif_renders_dataflow_findings_with_catalog_entries() {
    let diags = run_virtual(&[(
        "crates/iwarp/src/fixture.rs",
        fixture("panic_path_trigger.rs"),
    )]);
    let summaries: BTreeMap<&'static str, &'static str> = DATAFLOW_RULES.iter().copied().collect();
    let sarif = simlint::sarif::to_sarif(Path::new(""), &diags, &summaries);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"ruleId\": \"panic-path\""));
    assert!(sarif.contains("\"uri\": \"crates/iwarp/src/fixture.rs\""));
    // All three dataflow rules appear in the catalog even when only one fired.
    for (name, _) in DATAFLOW_RULES {
        assert!(sarif.contains(&format!("\"id\": \"{name}\"")), "{name}");
    }
    assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
}

// ---------------------------------------------------------------------------
// CLI: combined classic + dataflow run reports each bad directive once
// ---------------------------------------------------------------------------

#[test]
fn cli_reports_bad_allow_directives_once_in_combined_mode() {
    let fixture_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/allow_malformed.rs");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--dataflow")
        .arg("--json")
        .arg(&fixture_path)
        .output()
        .expect("run simlint binary");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(
        stdout.matches("\"rule\":\"malformed-allow\"").count(),
        1,
        "one malformed directive must produce exactly one diagnostic:\n{stdout}"
    );
    assert_eq!(
        stdout.matches("\"rule\":\"unknown-rule\"").count(),
        1,
        "one typoed rule name must produce exactly one diagnostic:\n{stdout}"
    );
    assert!(
        stdout.contains("\"baselined\""),
        "dataflow mode must report the baselined count:\n{stdout}"
    );
}
