//! Fixture-driven rule tests: every rule has a must-trigger and a
//! must-not-trigger fixture, the allow-list machinery is pinned down to
//! "suppresses exactly one diagnostic", and — the gate the rest of the
//! repository relies on — the workspace's own simulation scope must lint
//! clean, so `cargo test` fails the moment a determinism hazard lands.

use simlint::rules::all_rules;
use simlint::{find_workspace_root, lint_source, workspace_files, Diagnostic};

use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = fixture_path(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    lint_source(&path, &src, &all_rules())
}

fn count_rule(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

/// Each (rule, trigger fixture, ok fixture) triple. Trigger fixtures may
/// legitimately trip *other* rules too (a HashMap float-sum trips both the
/// hash and the float rule), so trigger assertions count only their own rule
/// while ok fixtures must be clean across the board.
const CASES: &[(&str, &str, &str)] = &[
    (
        "hash-collections",
        "hash_collections_trigger.rs",
        "hash_collections_ok.rs",
    ),
    ("wall-clock", "wall_clock_trigger.rs", "wall_clock_ok.rs"),
    (
        "thread-spawn",
        "thread_spawn_trigger.rs",
        "thread_spawn_ok.rs",
    ),
    (
        "unseeded-rng",
        "unseeded_rng_trigger.rs",
        "unseeded_rng_ok.rs",
    ),
    (
        "float-hash-accum",
        "float_hash_accum_trigger.rs",
        "float_hash_accum_ok.rs",
    ),
    (
        "relaxed-atomics",
        "relaxed_atomics_trigger.rs",
        "relaxed_atomics_ok.rs",
    ),
    (
        "cross-shard-state",
        "cross_shard_state_trigger.rs",
        "cross_shard_state_ok.rs",
    ),
    ("memo-key", "memo_key_trigger.rs", "memo_key_ok.rs"),
];

#[test]
fn every_rule_has_a_firing_fixture() {
    for (rule, trigger, _) in CASES {
        let diags = lint_fixture(trigger);
        assert!(
            count_rule(&diags, rule) >= 1,
            "{trigger} must trigger {rule}; got: {diags:#?}"
        );
    }
}

#[test]
fn every_rule_has_a_clean_fixture() {
    for (rule, _, ok) in CASES {
        let diags = lint_fixture(ok);
        assert!(
            diags.is_empty(),
            "{ok} must produce no diagnostics (pinning {rule}'s non-matches); got: {diags:#?}"
        );
    }
}

#[test]
fn rule_registry_matches_fixture_table() {
    let names: Vec<&str> = all_rules().iter().map(|r| r.name()).collect();
    let covered: Vec<&str> = CASES.iter().map(|(rule, _, _)| *rule).collect();
    assert_eq!(
        names, covered,
        "every registered rule needs a fixture row (and vice versa)"
    );
}

#[test]
fn allow_suppresses_exactly_one_diagnostic() {
    // Two identical violations, one annotated: exactly one must survive,
    // and no unused-allow may appear (the annotation did real work).
    let diags = lint_fixture("allow_suppression.rs");
    assert_eq!(
        count_rule(&diags, "relaxed-atomics"),
        1,
        "one of the two violations must be suppressed: {diags:#?}"
    );
    assert_eq!(count_rule(&diags, "unused-allow"), 0, "{diags:#?}");
    assert_eq!(diags.len(), 1, "nothing else may fire: {diags:#?}");
}

#[test]
fn stale_allow_is_reported() {
    let diags = lint_fixture("allow_unused.rs");
    assert_eq!(count_rule(&diags, "unused-allow"), 1, "{diags:#?}");
    assert_eq!(diags.len(), 1, "{diags:#?}");
}

#[test]
fn directive_hygiene_is_enforced() {
    // A reason-less allow and a typo'd rule name must both be reported, and
    // neither registers a suppression — so both Relaxed sites still fire.
    let diags = lint_fixture("allow_malformed.rs");
    assert_eq!(count_rule(&diags, "malformed-allow"), 1, "{diags:#?}");
    assert_eq!(count_rule(&diags, "unknown-rule"), 1, "{diags:#?}");
    assert_eq!(count_rule(&diags, "relaxed-atomics"), 2, "{diags:#?}");
}

#[test]
fn workspace_simulation_scope_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("simlint lives inside the workspace");
    let rules = all_rules();
    let mut diags = Vec::new();
    for file in workspace_files(&root).expect("walk workspace") {
        let src = std::fs::read_to_string(&file).expect("read source");
        diags.extend(lint_source(&file, &src, &rules));
    }
    assert!(
        diags.is_empty(),
        "the workspace's simulation scope must lint clean; fix or `// simlint: allow(rule) -- reason` these:\n{}",
        diags
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
