//! Integration tests for the `--units` layer: fixture trigger/ok pairs per
//! dimensional rule, the exhaustive operator-legality matrix, the
//! cross-crate witness chain, the committed-baseline byte-identity gate,
//! and the CLI baseline round trip.
//!
//! Fixture files live under `tests/fixtures/units/`. Their on-disk paths
//! start with `crates/simlint/…`, which is deliberately *outside*
//! [`simlint::SIM_SCOPE`] — so each test reads the fixture *content* from
//! disk and pairs it with a virtual sim-scope path (e.g.
//! `crates/simnet/src/fixture.rs`) before handing it to the engine. That
//! keeps the fixtures inert for workspace-wide runs while still exercising
//! the exact scope logic production files hit.

use simlint::units::{run_units, units_pass, UNITS_BASELINE_PATH, UNITS_RULES};
use simlint::{find_workspace_root, Diagnostic};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/units")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("reading fixture {}: {err}", path.display()))
}

/// Run the units engine over fixture contents mounted at virtual sim-scope
/// paths.
fn run_virtual(files: &[(&str, String)]) -> Vec<Diagnostic> {
    let owned: Vec<(PathBuf, String)> = files
        .iter()
        .map(|(p, s)| (PathBuf::from(p), s.clone()))
        .collect();
    run_units(Path::new(""), &owned).diags
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------------------
// unit-mismatch
// ---------------------------------------------------------------------------

#[test]
fn mismatch_fixture_trigger_flags_addition_and_both_swapped_args() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("unit_mismatch_trigger.rs"),
    )]);
    assert_eq!(
        rules_of(&diags),
        ["unit-mismatch", "unit-mismatch", "unit-mismatch"],
        "{diags:?}"
    );
    // The addition names both dimensions; the swapped call names the chain.
    assert!(
        diags.iter().any(|d| d.message.contains("`+` combines")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`stamp` -> `record`")),
        "swapped-argument finding must carry the call chain: {diags:?}"
    );
}

#[test]
fn mismatch_fixture_ok_twin_is_clean() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("unit_mismatch_ok.rs"),
    )]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// unit-arith
// ---------------------------------------------------------------------------

#[test]
fn arith_fixture_trigger_flags_each_impossible_combination() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("unit_arith_trigger.rs"),
    )]);
    assert_eq!(
        rules_of(&diags),
        ["unit-arith", "unit-arith", "unit-arith"],
        "{diags:?}"
    );
}

#[test]
fn arith_fixture_ok_twin_exercises_the_whole_legal_algebra() {
    let diags = run_virtual(&[("crates/simnet/src/fixture.rs", fixture("unit_arith_ok.rs"))]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// operator-legality matrix: every dimensioned pair × every operator
// ---------------------------------------------------------------------------

/// Evaluate `lhs op rhs` inside a probe function with one parameter per
/// dimension and return the rules that fired.
fn probe(expr: &str) -> Vec<&'static str> {
    let src =
        format!("fn probe(b: Bytes, d: SimDuration, r: ByteRate, n: u64) {{ let _ = {expr}; }}\n");
    let files = vec![(PathBuf::from("crates/simnet/src/probe.rs"), src)];
    let mut diags = Vec::new();
    units_pass(Path::new(""), &files, &mut diags);
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn operator_legality_matrix_is_exhaustive() {
    // (expression, expected rule or "" for legal)
    let cases: &[(&str, &str)] = &[
        // --- addition / subtraction: only like dimensions combine -------
        ("b + b", ""),
        ("d + d", ""),
        ("r + r", ""),
        ("b - b", ""),
        ("b + n", ""),
        ("n + d", ""),
        ("b + 3", ""),
        ("b + d", "unit-mismatch"),
        ("d + b", "unit-mismatch"),
        ("b + r", "unit-mismatch"),
        ("r + b", "unit-mismatch"),
        ("d + r", "unit-mismatch"),
        ("r + d", "unit-mismatch"),
        ("b - d", "unit-mismatch"),
        ("r - d", "unit-mismatch"),
        // --- multiplication: scalar*x and rate*duration only ------------
        ("b * 4", ""),
        ("4 * b", ""),
        ("d * 2", ""),
        ("r * d", ""), // rate * duration = bytes
        ("d * r", ""),
        ("b * b", "unit-arith"),
        ("d * d", "unit-arith"),
        ("r * r", "unit-arith"),
        ("b * d", "unit-arith"),
        ("d * b", "unit-arith"),
        ("b * r", "unit-arith"),
        ("r * b", "unit-arith"),
        // --- division: x/scalar, x/x, bytes/rate only -------------------
        ("b / 4", ""),
        ("d / 2", ""),
        ("r / 2", ""),
        ("b / b", ""), // count
        ("d / d", ""),
        ("r / r", ""),
        ("b / r", ""), // duration
        ("b / d", "unit-arith"),
        ("d / b", "unit-arith"),
        ("d / r", "unit-arith"),
        ("r / d", "unit-arith"),
        ("r / b", "unit-arith"),
        ("b % b", ""),
        ("b % d", "unit-arith"),
    ];
    for (expr, expected) in cases {
        let fired = probe(expr);
        if expected.is_empty() {
            assert!(fired.is_empty(), "`{expr}` must be legal, fired {fired:?}");
        } else {
            assert_eq!(
                fired,
                vec![*expected],
                "`{expr}` must fire exactly [{expected}]"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// raw-quantity
// ---------------------------------------------------------------------------

#[test]
fn raw_quantity_fixture_trigger_flags_bare_literal() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("raw_quantity_trigger.rs"),
    )]);
    assert_eq!(rules_of(&diags), ["raw-quantity"], "{diags:?}");
    assert!(
        diags[0].message.contains("`caller` -> `post`"),
        "{}",
        diags[0].message
    );
}

#[test]
fn raw_quantity_fixture_ok_twin_uses_the_blessed_constructor() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("raw_quantity_ok.rs"),
    )]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// lossy-time-cast
// ---------------------------------------------------------------------------

#[test]
fn lossy_cast_fixture_trigger_flags_narrowing() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("lossy_time_cast_trigger.rs"),
    )]);
    assert_eq!(rules_of(&diags), ["lossy-time-cast"], "{diags:?}");
    assert!(diags[0].message.contains("as u32"), "{}", diags[0].message);
}

#[test]
fn lossy_cast_fixture_ok_twin_widens_freely() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("lossy_time_cast_ok.rs"),
    )]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// cross-crate witness chain
// ---------------------------------------------------------------------------

#[test]
fn witness_chain_crosses_crates_through_the_fixed_point() {
    let diags = run_virtual(&[
        ("crates/simnet/src/fixture.rs", fixture("chain_inner.rs")),
        ("crates/iwarp/src/fixture.rs", fixture("chain_outer.rs")),
    ]);
    assert_eq!(rules_of(&diags), ["raw-quantity"], "{diags:?}");
    assert!(
        diags[0].message.contains("`kick` -> `forward` -> `admit`"),
        "chain must spell out both hops: {}",
        diags[0].message
    );
    // The finding anchors in the *caller's* crate.
    assert_eq!(diags[0].file, PathBuf::from("crates/iwarp/src/fixture.rs"));
}

// ---------------------------------------------------------------------------
// committed baseline: byte identity against a real workspace run
// ---------------------------------------------------------------------------

#[test]
fn workspace_units_run_reproduces_committed_baseline_bytes() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest).expect("workspace root above simlint");
    let files = simlint::dataflow::dataflow_files(&root).expect("collect dataflow scope");
    let outcome = run_units(&root, &files);
    let rendered = simlint::units::render_units_baseline(&root, &outcome.diags);
    let committed =
        std::fs::read_to_string(root.join(UNITS_BASELINE_PATH)).expect("committed baseline file");
    assert_eq!(
        rendered, committed,
        "workspace findings drifted from crates/simlint/units.baseline; \
         fix the finding or regenerate with --units --write-baseline"
    );
    // The migration to typed quantities is complete: the committed
    // baseline is *empty* and must stay that way.
    assert!(
        outcome.diags.is_empty(),
        "the units baseline is empty by design; new findings are real bugs: {:?}",
        outcome.diags
    );
}

// ---------------------------------------------------------------------------
// SARIF
// ---------------------------------------------------------------------------

#[test]
fn sarif_renders_units_findings_with_catalog_entries() {
    let diags = run_virtual(&[(
        "crates/simnet/src/fixture.rs",
        fixture("lossy_time_cast_trigger.rs"),
    )]);
    let summaries: BTreeMap<&'static str, &'static str> = UNITS_RULES.iter().copied().collect();
    let sarif = simlint::sarif::to_sarif(Path::new(""), &diags, &summaries);
    assert!(sarif.contains("\"ruleId\": \"lossy-time-cast\""));
    for (name, _) in UNITS_RULES {
        assert!(sarif.contains(&format!("\"id\": \"{name}\"")), "{name}");
    }
    assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
}

// ---------------------------------------------------------------------------
// CLI: deny gate, baseline write, and round-trip acceptance
// ---------------------------------------------------------------------------

/// Build a throwaway workspace shell under `CARGO_TARGET_TMPDIR` with one
/// sim-scope file, so CLI runs exercise real path/scope resolution.
fn scratch_workspace(tag: &str, content: &str) -> (PathBuf, PathBuf) {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("units_cli_{tag}"));
    let src_dir = root.join("crates/simnet/src");
    std::fs::create_dir_all(&src_dir).expect("scratch src dir");
    std::fs::create_dir_all(root.join("crates/simlint")).expect("scratch baseline dir");
    let file = src_dir.join("fixture.rs");
    std::fs::write(&file, content).expect("write scratch fixture");
    (root, file)
}

#[test]
fn cli_units_deny_gate_fails_on_fresh_finding() {
    let (root, file) = scratch_workspace("deny", &fixture("unit_mismatch_trigger.rs"));
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--units")
        .arg("--deny-all")
        .arg("--json")
        .arg("--root")
        .arg(&root)
        .arg(&file)
        .output()
        .expect("run simlint binary");
    assert!(
        !out.status.success(),
        "fresh units findings must fail --deny-all"
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("\"rule\":\"unit-mismatch\""),
        "JSON must carry the finding:\n{stdout}"
    );
    assert!(
        stdout.contains("\"baselined\""),
        "units mode must report the baselined count:\n{stdout}"
    );
}

#[test]
fn cli_units_baseline_round_trip_accepts_then_gates() {
    let (root, file) = scratch_workspace("roundtrip", &fixture("raw_quantity_trigger.rs"));
    let bin = env!("CARGO_BIN_EXE_simlint");
    // 1. Accept the current findings into the baseline.
    let write = std::process::Command::new(bin)
        .arg("--units")
        .arg("--write-baseline")
        .arg("--root")
        .arg(&root)
        .arg(&file)
        .output()
        .expect("run simlint binary");
    assert!(write.status.success(), "{write:?}");
    let baseline = root.join(UNITS_BASELINE_PATH);
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(
        text.contains("raw-quantity|crates/simnet/src/fixture.rs|"),
        "baseline must hold the fingerprint:\n{text}"
    );
    // 2. The same run now passes the deny gate (finding is baselined).
    let gated = std::process::Command::new(bin)
        .arg("--units")
        .arg("--deny-all")
        .arg("--root")
        .arg(&root)
        .arg(&file)
        .output()
        .expect("run simlint binary");
    assert!(
        gated.status.success(),
        "baselined finding must pass --deny-all: {:?}",
        String::from_utf8_lossy(&gated.stdout)
    );
    // 3. Fixing the code strands the baseline entry: stale entries fail.
    std::fs::write(&file, fixture("raw_quantity_ok.rs")).expect("rewrite fixture");
    let stale = std::process::Command::new(bin)
        .arg("--units")
        .arg("--deny-all")
        .arg("--root")
        .arg(&root)
        .arg(&file)
        .output()
        .expect("run simlint binary");
    assert!(
        !stale.status.success(),
        "stale baseline entries must fail --deny-all"
    );
    let stdout = String::from_utf8(stale.stdout).expect("utf8");
    assert!(
        stdout.contains("stale baseline entry"),
        "stale entry must be reported:\n{stdout}"
    );
}

#[test]
fn cli_list_rules_names_the_units_section() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--list-rules")
        .output()
        .expect("run simlint binary");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("dimensional rules (run with --units):"));
    for (name, _) in UNITS_RULES {
        assert!(stdout.contains(name), "{name} missing:\n{stdout}");
    }
}
