// Fixture: must NOT trigger `memo-key` — the key carries both the
// perturbation salt and the fault-plane fingerprint, and unrelated structs
// (even cache-shaped ones) are none of this rule's business.
pub struct MemoKey {
    pub bytes: u64,
    pub overhead: u64,
    pub tie_salt: u64,
    pub fault_fp: u64,
}

pub struct OtherCacheKey {
    pub bytes: u64,
}

pub fn lookup(_key: &MemoKey, _other: &OtherCacheKey) -> Option<u64> {
    None
}
