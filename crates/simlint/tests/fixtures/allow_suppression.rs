// Fixture: two identical violations; the annotated one must be suppressed,
// the bare one must still fire — exactly one diagnostic for this file.
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn annotated() -> u64 {
    // simlint: allow(relaxed-atomics) -- observational counter, never read back into sim state
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

fn bare() -> u64 {
    COUNTER.fetch_add(1, Ordering::Relaxed)
}
