// Fixture: must trigger `hash-collections` (imports, fields, constructors,
// hasher types all count — any reachable iteration is hash-ordered).
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

struct State {
    routes: HashMap<u32, u64>,
    seen: HashSet<u64>,
}

fn build() -> HashMap<String, f64> {
    HashMap::new()
}

fn hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}
