// Fixture: must NOT trigger `hash-collections` — BTree containers and
// sorted vectors are the deterministic equivalents.
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

struct State {
    routes: BTreeMap<u32, u64>,
    seen: BTreeSet<u64>,
    backlog: VecDeque<u64>,
}

fn build() -> BTreeMap<String, u64> {
    BTreeMap::new()
}

fn sorted_drain(state: &mut State) -> Vec<u64> {
    let mut out: Vec<u64> = state.seen.iter().copied().collect();
    out.sort_unstable();
    out
}
