// Fixture: must trigger `float-hash-accum` — float addition is not
// associative, so reducing a hash-ordered iterator gives run-dependent bits.
// (`hash-collections` fires here too; this fixture's assertions only pin the
// float-accumulation rule.)
use std::collections::HashMap;

fn mean_latency(samples: &HashMap<u32, f64>) -> f64 {
    let total = samples.values().sum::<f64>();
    total / samples.len() as f64
}

fn mapped(samples: &HashMap<u32, (f64, u64)>) -> f64 {
    samples.values().map(|v| v.0).sum::<f64>()
}

fn folded(samples: &HashMap<u32, f64>) -> f64 {
    samples.values().fold(0.0, |acc, v| acc + v)
}
