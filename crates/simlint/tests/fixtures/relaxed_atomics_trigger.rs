// Fixture: must trigger `relaxed-atomics` — Relaxed permits reorderings
// that only bite under real parallelism, which sim code must never rely on.
use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);

fn record() -> u64 {
    EVENTS.fetch_add(1, Ordering::Relaxed)
}
