// Fixture: must trigger `thread-spawn` — OS threads put event ordering at
// the mercy of the host scheduler.
use std::thread;

fn fan_out() -> std::thread::JoinHandle<u64> {
    thread::spawn(|| 42)
}

fn fan_out_fq() {
    let h = std::thread::spawn(|| ());
    h.join().unwrap();
}
