// Fixture: must trigger `memo-key` — this MemoKey forgets the fault-plane
// fingerprint, so an outcome cached fault-free would replay under faults.
pub struct MemoKey {
    pub bytes: u64,
    pub overhead: u64,
    pub tie_salt: u64,
}

pub fn lookup(_key: &MemoKey) -> Option<u64> {
    None
}
