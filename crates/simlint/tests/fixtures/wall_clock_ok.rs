// Fixture: must NOT trigger `wall-clock` — virtual time via simnet's own
// clock is the supported spelling, and simnet's `time` module shares a name
// with `std::time` without being it.
use simnet::time::{SimDuration, SimTime};
use simnet::Sim;

async fn wait_one_us(sim: &Sim) -> SimTime {
    sim.sleep(SimDuration::from_micros_f64(1.0)).await;
    sim.now()
}

fn horizon(now: SimTime, step: SimDuration) -> SimTime {
    now + step
}
