// Fixture: must trigger `unseeded-rng` — entropy-seeded generators diverge
// across runs by construction.
fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let jitter: f64 = rand::random();
    let seeded_from_os = rand::rngs::StdRng::from_entropy();
    (jitter * 10.0) as u64
}
