// Fixture: a stale allow that suppresses nothing must itself be reported
// (`unused-allow`), so exemptions cannot outlive the code they excused.
fn clean() -> u64 {
    // simlint: allow(wall-clock) -- left behind after a refactor
    7
}
