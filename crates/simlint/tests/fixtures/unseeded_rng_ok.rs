// Fixture: must NOT trigger `unseeded-rng` — explicit seeds (logged, replayable)
// are the supported way to get randomness into a simulation.
fn roll(seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let fixed = rand::rngs::StdRng::from_seed([7u8; 32]);
    rng.next_u64()
}

fn mix(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
