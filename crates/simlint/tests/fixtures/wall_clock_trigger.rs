// Fixture: must trigger `wall-clock` — any std::time read couples the
// simulation to host scheduling.
use std::time::Instant;

fn stamp() -> u128 {
    let t0 = Instant::now();
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap();
    t0.elapsed().as_nanos() + epoch.as_nanos()
}
