// Fixture: must NOT trigger `thread-spawn` — simnet's task spawn and its
// JoinHandle are the deterministic, single-threaded concurrency primitives.
use simnet::{JoinHandle, Sim};

fn fan_out(sim: &Sim) -> JoinHandle<u64> {
    sim.spawn(async { 42 })
}

async fn join_in_sim(sim: &Sim) -> u64 {
    let handle = sim.spawn(async { 7 });
    handle.await
}
