// Fixture: directive hygiene. A reason-less allow is `malformed-allow`, a
// typo'd rule name is `unknown-rule`; neither registers a suppression.
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn missing_reason() -> u64 {
    // simlint: allow(relaxed-atomics)
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

fn typoed_rule() -> u64 {
    // simlint: allow(relaxed-atomic) -- singular typo
    COUNTER.fetch_add(1, Ordering::Relaxed)
}
