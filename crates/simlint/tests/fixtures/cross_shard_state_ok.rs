// Fixture: must NOT trigger `cross-shard-state` — per-shard interior
// mutability (Rc<RefCell<_>> inside one single-threaded executor) and Arc
// around immutable topology are both idiomatic; only `Send`-shaped shared
// *mutable* state is a merge bypass.
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

struct LinkTable;

struct Shard {
    // Shard-local state: cannot cross the boundary (shard roots are Send,
    // Rc is not), so the cells are safe.
    local: Rc<RefCell<Vec<u64>>>,
    cursor: Cell<usize>,
    // Immutable shared topology: read-only after construction.
    links: Arc<LinkTable>,
}

fn route(shard: &Shard) -> usize {
    shard.cursor.set(shard.cursor.get() + 1);
    shard.local.borrow().len()
}
