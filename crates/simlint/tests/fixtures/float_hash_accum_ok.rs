// Fixture: must NOT trigger `float-hash-accum` — ordered sources (slices,
// Vec) and integer reductions are both fine.
use std::collections::BTreeMap;

fn mean_latency(samples: &[f64]) -> f64 {
    let total = samples.iter().sum::<f64>();
    total / samples.len() as f64
}

fn event_count(per_stage: &BTreeMap<u32, u64>) -> u64 {
    per_stage.values().sum::<u64>()
}

fn counted(per_stage: &BTreeMap<u32, u64>) -> u64 {
    per_stage.values().fold(0, |acc, v| acc + v)
}
