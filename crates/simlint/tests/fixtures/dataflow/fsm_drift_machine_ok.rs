// Fixture: a fabric QpPhase machine that agrees with the oracle table
// exactly (no drift in either direction).

pub enum QpPhase {
    Reset,
    Init,
    Rtr,
    Rts,
    Error,
}

pub enum QpEvent {
    BringUp,
    Fatal,
    TearDown,
}

pub fn fsm_next(from: QpPhase, ev: QpEvent) -> Option<QpPhase> {
    match (from, ev) {
        (QpPhase::Reset, QpEvent::BringUp) => Some(QpPhase::Init),
        (QpPhase::Init, QpEvent::BringUp) => Some(QpPhase::Rtr),
        (QpPhase::Rtr, QpEvent::BringUp) => Some(QpPhase::Rts),
        (_, QpEvent::Fatal) => Some(QpPhase::Error),
        (_, QpEvent::TearDown) => Some(QpPhase::Reset),
        _ => None,
    }
}
