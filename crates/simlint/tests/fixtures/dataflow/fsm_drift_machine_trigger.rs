// Fixture: a fabric QpPhase machine implementing one transition (Error
// --Reopen--> Init) that the oracle table does not check (`fsm-drift`,
// implemented-but-unchecked direction).

pub enum QpPhase {
    Reset,
    Init,
    Rtr,
    Rts,
    Error,
}

pub enum QpEvent {
    BringUp,
    Fatal,
    TearDown,
    Reopen,
}

pub fn fsm_next(from: QpPhase, ev: QpEvent) -> Option<QpPhase> {
    match (from, ev) {
        (QpPhase::Reset, QpEvent::BringUp) => Some(QpPhase::Init),
        (QpPhase::Init, QpEvent::BringUp) => Some(QpPhase::Rtr),
        (QpPhase::Rtr, QpEvent::BringUp) => Some(QpPhase::Rts),
        (QpPhase::Error, QpEvent::Reopen) => Some(QpPhase::Init),
        (_, QpEvent::Fatal) => Some(QpPhase::Error),
        (_, QpEvent::TearDown) => Some(QpPhase::Reset),
        _ => None,
    }
}
