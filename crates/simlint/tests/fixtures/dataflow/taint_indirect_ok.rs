// Fixture: clean twin of taint_indirect_trigger — the helper derives its
// value from the deterministic simulation clock, so nothing taints the
// scheduling sink.

pub fn jitter_ns(sim: &Sim) -> u64 {
    sim.now().as_nanos()
}

pub fn schedule(sim: &Sim) {
    let j = jitter_ns(sim);
    sim.spawn(async move {
        let _ = j;
    });
}
