// Fixture: clean twin of panic_path_trigger — the invariant is stated in
// an expect, which the panic audit accepts.

pub fn transfer(q: &Queue) {
    deliver(q);
}

fn deliver(q: &Queue) {
    q.items
        .borrow_mut()
        .pop_front()
        .expect("transfer enqueues before deliver runs");
}
