// Fixture: a wall-clock read hidden behind one call indirection reaches an
// event-scheduling sink. The flat per-file rules cannot see this — only the
// interprocedural taint pass can (`taint-through-call`).

pub fn jitter_ns() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

pub fn schedule(sim: &Sim) {
    let j = jitter_ns();
    sim.spawn(async move {
        let _ = j;
    });
}
