// Fixture: oracle-side transition table for the fsm-drift pair tests,
// mirroring the shape of `simcheck::ib::QP_FSM_TABLE`.

pub const QP_FSM_TABLE: &[(&str, &str, &str)] = &[
    ("Reset", "BringUp", "Init"),
    ("Init", "BringUp", "Rtr"),
    ("Rtr", "BringUp", "Rts"),
    ("*", "Fatal", "Error"),
    ("*", "TearDown", "Reset"),
];
