// Fixture: a bare unwrap in a helper one call away from a fabric transfer
// hot path (`panic-path`).

pub fn transfer(q: &Queue) {
    deliver(q);
}

fn deliver(q: &Queue) {
    q.items.borrow_mut().pop_front().unwrap();
}
