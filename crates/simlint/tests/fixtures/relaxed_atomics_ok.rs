// Fixture: must NOT trigger `relaxed-atomics` — SeqCst (or a plain Cell in
// single-threaded sim code) is the supported spelling.
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);

fn record() -> u64 {
    EVENTS.fetch_add(1, Ordering::SeqCst)
}

fn record_single_threaded(counter: &Cell<u64>) {
    counter.set(counter.get() + 1);
}
