// Fixture: must trigger `cross-shard-state` — shared mutable state that is
// `Send` (locks, Arc-wrapped cells) can leak across shard boundaries and
// bypass the deterministic merge channels.
use std::sync::{Arc, Mutex, RwLock};

struct SharedLedger {
    // A lock in sim scope is a merge bypass: whichever worker thread wins
    // the lock mutates first, and no digest can replay that order.
    totals: Arc<Mutex<Vec<u64>>>,
    calibration: RwLock<f64>,
}

// Interior mutability laundered through Arc — syntactically `Send`-shaped
// even when the compiler would ultimately reject it.
fn laundered() -> Arc<std::cell::RefCell<u64>> {
    unreachable!("type-level fixture only; never compiled")
}
