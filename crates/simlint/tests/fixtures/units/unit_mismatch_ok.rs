//! Ok twin of `unit_mismatch_trigger.rs`: the same shapes with the
//! dimensions lined up — conversion through the legal algebra and
//! arguments in declared order.

pub fn serialize_window(bytes: Bytes, rate: ByteRate) -> SimDuration {
    bytes / rate
}

pub fn stamp(bytes: Bytes, dur: SimDuration) {
    record(bytes, dur);
}

fn record(bytes: Bytes, dur: SimDuration) {
    let _ = (bytes, dur);
}
