//! Ok twin of `lossy_time_cast_trigger.rs`: widening casts preserve every
//! representable simulated instant.

pub fn widen(dur: SimDuration) -> u64 {
    let wide = dur.as_nanos() as u128;
    wide as u64
}
