//! Trigger fixture: multiplications and divisions with no physical
//! meaning. `ns * ns` is a square duration; `bytes * rate` is bytes² per
//! second — neither can ever be a simulation quantity.

pub fn impossible_products(a: SimDuration, b: SimDuration, bytes: Bytes, rate: ByteRate) -> u64 {
    let squared = a * b;
    let huh = bytes * rate;
    let _ = (squared, huh);
    0
}

pub fn impossible_quotient(rate: ByteRate, bytes: Bytes) -> u64 {
    let upside_down = rate / bytes;
    let _ = upside_down;
    0
}
