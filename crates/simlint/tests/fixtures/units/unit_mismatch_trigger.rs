//! Trigger fixture: cross-dimension `+` and swapped dimensioned arguments.
//! Mounted at a virtual sim-scope path by `tests/units.rs`.

/// Adding a byte count to a duration compiles when both are raw `u64`s —
/// the units pass must catch the dimension clash anyway.
pub fn skewed_window(bytes: Bytes, dur: SimDuration) -> u64 {
    let skew = bytes + dur;
    let _ = skew;
    0
}

/// The classic swapped-argument bug: both parameters dimensioned, both
/// crossed at the call site.
pub fn stamp(bytes: Bytes, dur: SimDuration) {
    record(dur, bytes);
}

fn record(bytes: Bytes, dur: SimDuration) {
    let _ = (bytes, dur);
}
