//! Outer half of the cross-crate witness-chain fixture (mounted under
//! `crates/iwarp/`). The literal is two hops from the declaration that
//! dimensions it; the finding's chain must spell out both.

pub fn kick() {
    forward(1448);
}
