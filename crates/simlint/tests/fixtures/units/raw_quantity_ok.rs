//! Ok twin of `raw_quantity_trigger.rs`: the literal enters through the
//! blessed typed constructor, which is the sanctioned raw→dimension entry
//! point.

pub fn post(bytes: Bytes) {
    let _ = bytes;
}

pub fn caller() {
    post(Bytes::new(4096));
}
