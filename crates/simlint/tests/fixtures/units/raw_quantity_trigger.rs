//! Trigger fixture: a bare integer literal flowing into a dimensioned
//! parameter. The number is probably right today — and silently wrong the
//! day the parameter's meaning changes.

pub fn post(bytes: Bytes) {
    let _ = bytes;
}

pub fn caller() {
    post(4096);
}
