//! Ok twin of `unit_arith_trigger.rs`: the entire legal algebra —
//! scalars compose with anything, `bytes / rate` is a duration,
//! `rate * duration` is bytes, `x / x` is a count.

pub fn legal_algebra(bytes: Bytes, rate: ByteRate, n: u64) -> SimDuration {
    let total = bytes * 4;
    let per_segment = total / n;
    let segments = per_segment / bytes;
    let wire = rate * (bytes / rate);
    let _ = (segments, wire);
    bytes / rate
}
