//! Trigger fixture: a nanosecond quantity truncated by `as u32` — wraps
//! after ~4.3 seconds of simulated time, which a long benchmark sweep
//! exceeds without ever overflowing a test.

pub fn truncate(dur: SimDuration) -> u32 {
    dur.as_nanos() as u32
}
