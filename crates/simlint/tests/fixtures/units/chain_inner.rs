//! Inner half of the cross-crate witness-chain fixture (mounted under
//! `crates/simnet/`). `forward`'s raw `n` is only dimensioned because it
//! flows verbatim into `admit`'s typed parameter — the interprocedural
//! fixed point must lift that backwards.

pub fn admit(bytes: Bytes) {
    let _ = bytes;
}

pub fn forward(n: u64) {
    admit(n);
}
