//! Timing calibration for the Myri-10G NIC (G0-PCIE-8A-C) + MX-10G stack.
//!
//! Anchors from the paper:
//! * Send/recv half-RTT: **3.05 µs** over Myrinet (MXoM), **3.45 µs** over
//!   Ethernet (MXoE) — the best of all tested interconnects.
//! * Bandwidth does not exceed **~75%** of the 1250 MB/s line rate
//!   (~940 MB/s): the cards were forced to PCIe x4 on these hosts' Intel
//!   E7520 chipset.
//! * MX switches to an internal rendezvous at **32 KB**.
//! * NIC-offloaded matching: cheap unexpected handling, expensive long
//!   posted lists.

use hostmodel::mem::RegistrationCosts;
use hostmodel::pcie::PcieConfig;
use simnet::{ByteRate, Bytes, SimDuration};

/// Complete calibration for one Myri-10G NIC + host.
#[derive(Clone, Copy, Debug)]
pub struct MyriCalib {
    /// PCIe slot — x4 on the testbed (the bandwidth cap).
    pub pcie: PcieConfig,
    /// Lanai firmware TX path throughput.
    pub lanai_tx_bytes_per_sec: ByteRate,
    /// Lanai TX per-packet occupancy.
    pub lanai_tx_overhead: SimDuration,
    /// Lanai TX pipeline latency.
    pub lanai_tx_latency: SimDuration,
    /// Lanai firmware RX path throughput.
    pub lanai_rx_bytes_per_sec: ByteRate,
    /// Lanai RX per-packet occupancy.
    pub lanai_rx_overhead: SimDuration,
    /// Lanai RX pipeline latency (includes the base match attempt).
    pub lanai_rx_latency: SimDuration,
    /// Cost per posted-receive-list entry walked by the NIC on message
    /// arrival. The Fig. 8 "Myrinet worst" constant.
    pub nic_match_posted_per_entry: SimDuration,
    /// Cost per unexpected-list entry walked by the NIC when a receive is
    /// posted. The Fig. 7 "Myrinet best" constant.
    pub nic_match_unexpected_per_entry: SimDuration,
    /// 10G line rate (both link modes).
    pub link_bytes_per_sec: ByteRate,
    /// Cable/PHY latency per hop.
    pub link_latency: SimDuration,
    /// Host CPU cost of an mx_isend/mx_irecv call (MX's lean host path).
    pub post_cost: SimDuration,
    /// Internal eager→rendezvous threshold.
    pub rndv_threshold: Bytes,
    /// Host CPU work when the progression thread starts a large transfer.
    pub progression_wakeup: SimDuration,
    /// Internal registration cache cost model (enabled by default, as in
    /// the paper's tests).
    pub registration: RegistrationCosts,
    /// Maximum packet payload over Myrinet framing.
    pub mxom_packet_payload: Bytes,
    /// Per-packet overhead over Myrinet framing (Myrinet header + CRC).
    pub mxom_packet_overhead: Bytes,
    /// Maximum packet payload over Ethernet framing.
    pub mxoe_packet_payload: Bytes,
    /// Per-packet overhead over Ethernet framing (Ethernet wire overhead +
    /// MX header).
    pub mxoe_packet_overhead: Bytes,
}

impl Default for MyriCalib {
    fn default() -> Self {
        MyriCalib {
            pcie: PcieConfig {
                // x4, but Myricom's DMA engines push the lane efficiency
                // slightly above the generic x4 default.
                bytes_per_sec: ByteRate::from_bytes_per_sec(985_000_000),
                ..PcieConfig::gen1_x4()
            },
            lanai_tx_bytes_per_sec: ByteRate::from_bytes_per_sec(1_600_000_000),
            lanai_tx_overhead: SimDuration::from_nanos(150),
            lanai_tx_latency: SimDuration::from_nanos(500),
            lanai_rx_bytes_per_sec: ByteRate::from_bytes_per_sec(1_600_000_000),
            lanai_rx_overhead: SimDuration::from_nanos(150),
            lanai_rx_latency: SimDuration::from_nanos(700),
            nic_match_posted_per_entry: SimDuration::from_nanos(50),
            nic_match_unexpected_per_entry: SimDuration::from_nanos(4),
            link_bytes_per_sec: ByteRate::from_gbps(10),
            link_latency: SimDuration::from_nanos(100),
            post_cost: SimDuration::from_nanos(250),
            rndv_threshold: Bytes::from_kib(32),
            progression_wakeup: SimDuration::from_micros(1),
            registration: RegistrationCosts {
                // Calibrated to the paper's Fig. 6: ~1.4x buffer-reuse
                // ratio at 1 MB with the MX registration cache enabled.
                base: SimDuration::from_micros(8),
                per_page: SimDuration::from_nanos(1_600),
                dereg: SimDuration::from_micros(6),
                cache_hit: SimDuration::from_nanos(120),
                cache_capacity: 16,
            },
            mxom_packet_payload: Bytes::new(4_096),
            mxom_packet_overhead: Bytes::new(16),
            mxoe_packet_payload: Bytes::new(1_472),
            mxoe_packet_overhead: Bytes::new(66),
        }
    }
}
