//! MX 64-bit match-bits semantics (pure logic).
//!
//! A receive supplies `(match_info, mask)`; a send supplies `match_info`.
//! They match when the masked bits agree. MPI maps `(context, rank, tag)`
//! into the 64 bits; wildcard receives widen the mask.

/// A 64-bit match descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MatchInfo(pub u64);

impl MatchInfo {
    /// The MPI-ish packing used by the MPICH-MX port: context(16) |
    /// rank(16) | tag(32).
    pub fn mpi(context: u16, rank: u16, tag: u32) -> MatchInfo {
        MatchInfo(((context as u64) << 48) | ((rank as u64) << 32) | tag as u64)
    }

    /// Mask matching any rank (MPI_ANY_SOURCE).
    pub const ANY_RANK_MASK: u64 = !(0xFFFFu64 << 32);
    /// Mask matching any tag (MPI_ANY_TAG).
    pub const ANY_TAG_MASK: u64 = !0xFFFF_FFFFu64;
    /// Exact-match mask.
    pub const EXACT: u64 = !0u64;
}

/// Does a send with `send_bits` satisfy a receive `(recv_bits, mask)`?
#[inline]
pub fn matches(send_bits: MatchInfo, recv_bits: MatchInfo, mask: u64) -> bool {
    (send_bits.0 & mask) == (recv_bits.0 & mask)
}

/// Per-connection replay filter: the receiving NIC accepts each message
/// sequence number once and drops duplicates created by sender-side
/// resends (a lost ACK makes the sender replay a message the receiver
/// already matched — see [`crate::recovery`]).
#[derive(Debug, Default)]
pub struct ReplayFilter {
    seen: std::collections::BTreeSet<u64>,
    drops: u64,
}

impl ReplayFilter {
    /// An empty filter.
    pub fn new() -> Self {
        ReplayFilter::default()
    }

    /// Accept `seq` if unseen; replays are counted and rejected.
    pub fn accept(&mut self, seq: u64) -> bool {
        if self.seen.insert(seq) {
            true
        } else {
            self.drops += 1;
            false
        }
    }

    /// Replays dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_requires_all_fields() {
        let s = MatchInfo::mpi(1, 3, 42);
        assert!(matches(s, MatchInfo::mpi(1, 3, 42), MatchInfo::EXACT));
        assert!(!matches(s, MatchInfo::mpi(1, 3, 43), MatchInfo::EXACT));
        assert!(!matches(s, MatchInfo::mpi(1, 4, 42), MatchInfo::EXACT));
        assert!(!matches(s, MatchInfo::mpi(2, 3, 42), MatchInfo::EXACT));
    }

    #[test]
    fn any_source_ignores_rank() {
        let s = MatchInfo::mpi(1, 9, 42);
        assert!(matches(
            s,
            MatchInfo::mpi(1, 0, 42),
            MatchInfo::ANY_RANK_MASK
        ));
        assert!(!matches(
            s,
            MatchInfo::mpi(1, 0, 41),
            MatchInfo::ANY_RANK_MASK
        ));
    }

    #[test]
    fn any_tag_ignores_tag() {
        let s = MatchInfo::mpi(1, 2, 977);
        assert!(matches(s, MatchInfo::mpi(1, 2, 0), MatchInfo::ANY_TAG_MASK));
        assert!(!matches(
            s,
            MatchInfo::mpi(1, 3, 0),
            MatchInfo::ANY_TAG_MASK
        ));
    }

    #[test]
    fn replay_filter_accepts_once_and_counts_drops() {
        let mut f = ReplayFilter::new();
        assert!(f.accept(7));
        assert!(f.accept(8));
        assert!(!f.accept(7));
        assert!(!f.accept(7));
        assert!(f.accept(9));
        assert_eq!(f.drops(), 2);
    }

    #[test]
    fn packing_is_disjoint() {
        let m = MatchInfo::mpi(0xABCD, 0x1234, 0xDEADBEEF);
        assert_eq!(m.0 >> 48, 0xABCD);
        assert_eq!((m.0 >> 32) & 0xFFFF, 0x1234);
        assert_eq!(m.0 & 0xFFFF_FFFF, 0xDEADBEEF);
    }
}
