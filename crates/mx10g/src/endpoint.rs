//! The MX endpoint API: `mx_isend` / `mx_irecv` / `mx_test` / `mx_wait`.
//!
//! Semantics follow the MX-10G library: non-blocking matched send/receive
//! with 64-bit match bits, an internal eager→rendezvous switch at 32 KB,
//! NIC-side matching, an internal registration cache, and a host
//! progression thread that starts large transfers on the receive side.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use hostmodel::cpu::Cpu;
use hostmodel::mem::VirtAddr;
use simnet::sync::{FifoGate, Notify};
use simnet::{Bytes, FaultPlane, Pipeline, Sim};

use crate::matching::{matches, MatchInfo, ReplayFilter};
use crate::nic::{MxFabric, MxNic};
use crate::recovery::{transfer_with_resend, MxTuning};

/// Completion status of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MxStatus {
    /// Bytes transferred.
    pub len: u64,
    /// Match bits of the message that satisfied this request (receives
    /// report the sender's bits — how MPI recovers `MPI_ANY_SOURCE`).
    pub bits: MatchInfo,
}

/// Lifecycle phases of one MX send, from matching through protocol
/// selection to completion. This is the canonical machine: [`fsm_next`] is
/// the single in-crate statement of which transitions exist, and `simlint
/// --dataflow` statically diffs it against `simcheck::mx::MX_FSM_TABLE`
/// (rule `fsm-drift`) so the model and the conformance-side restatement
/// cannot disagree silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MxSendPhase {
    /// Posted; the eager/rendezvous switch has not yet chosen a protocol.
    Matching,
    /// Eager: the payload travels with the envelope.
    EagerData,
    /// Rendezvous: RTS announced, waiting for the receiver's CTS.
    RndvHandshake,
    /// Rendezvous: CTS arrived, the sender NIC streams the bulk data.
    RndvData,
    /// The send request completed.
    Complete,
}

/// Events driving [`MxSendPhase`] through [`fsm_next`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MxSendEvent {
    /// The switch chose eager (`len < rndv_threshold`).
    SelectEager,
    /// The switch chose rendezvous.
    SelectRndv,
    /// The receiver matched the RTS and its CTS reached the sender.
    CtsArrived,
    /// The payload (eager or pulled) finished delivering.
    DataDelivered,
}

impl MxSendPhase {
    /// Variant spelling as it appears in `simcheck::mx::MX_FSM_TABLE` rows.
    pub fn table_name(self) -> &'static str {
        match self {
            MxSendPhase::Matching => "Matching",
            MxSendPhase::EagerData => "EagerData",
            MxSendPhase::RndvHandshake => "RndvHandshake",
            MxSendPhase::RndvData => "RndvData",
            MxSendPhase::Complete => "Complete",
        }
    }
}

impl MxSendEvent {
    /// Event spelling as it appears in `simcheck::mx::MX_FSM_TABLE` rows.
    pub fn table_name(self) -> &'static str {
        match self {
            MxSendEvent::SelectEager => "SelectEager",
            MxSendEvent::SelectRndv => "SelectRndv",
            MxSendEvent::CtsArrived => "CtsArrived",
            MxSendEvent::DataDelivered => "DataDelivered",
        }
    }
}

/// Canonical MX send transition function: `None` means the event cannot
/// occur in `from` (e.g. a CTS for an eager send).
pub fn fsm_next(from: MxSendPhase, ev: MxSendEvent) -> Option<MxSendPhase> {
    match (from, ev) {
        (MxSendPhase::Matching, MxSendEvent::SelectEager) => Some(MxSendPhase::EagerData),
        (MxSendPhase::Matching, MxSendEvent::SelectRndv) => Some(MxSendPhase::RndvHandshake),
        (MxSendPhase::RndvHandshake, MxSendEvent::CtsArrived) => Some(MxSendPhase::RndvData),
        (MxSendPhase::EagerData, MxSendEvent::DataDelivered) => Some(MxSendPhase::Complete),
        (MxSendPhase::RndvData, MxSendEvent::DataDelivered) => Some(MxSendPhase::Complete),
        _ => None,
    }
}

struct ReqState {
    done: Cell<bool>,
    len: Cell<u64>,
    bits: Cell<MatchInfo>,
    phase: Cell<MxSendPhase>,
    notify: Notify,
}

/// Handle to a pending non-blocking operation.
#[derive(Clone)]
pub struct MxRequest {
    state: Rc<ReqState>,
}

impl MxRequest {
    fn new() -> Self {
        MxRequest {
            state: Rc::new(ReqState {
                done: Cell::new(false),
                len: Cell::new(0),
                bits: Cell::new(MatchInfo(0)),
                phase: Cell::new(MxSendPhase::Matching),
                notify: Notify::new(),
            }),
        }
    }

    /// Advance the send phase by `ev`, debug-asserting the move is one
    /// [`fsm_next`] admits. Pure bookkeeping: no simulated time is touched.
    fn advance_phase(&self, ev: MxSendEvent) {
        match fsm_next(self.state.phase.get(), ev) {
            Some(next) => self.state.phase.set(next),
            None => debug_assert!(
                false,
                "illegal MX send transition {:?} --{ev:?}",
                self.state.phase.get()
            ),
        }
    }

    /// Current [`MxSendPhase`] (meaningful for send requests; receive
    /// requests stay in `Matching`).
    pub fn send_phase(&self) -> MxSendPhase {
        self.state.phase.get()
    }

    fn complete(&self, len: u64, bits: MatchInfo) {
        self.state.len.set(len);
        self.state.bits.set(bits);
        self.state.done.set(true);
        self.state.notify.notify_one();
    }

    /// Non-blocking completion probe (`mx_test`).
    pub fn test(&self) -> Option<MxStatus> {
        self.state.done.get().then(|| MxStatus {
            len: self.state.len.get(),
            bits: self.state.bits.get(),
        })
    }

    /// Block (in virtual time) until complete (`mx_wait`).
    pub async fn wait(&self) -> MxStatus {
        while !self.state.done.get() {
            self.state.notify.notified().await;
        }
        MxStatus {
            len: self.state.len.get(),
            bits: self.state.bits.get(),
        }
    }
}

struct Posted {
    bits: MatchInfo,
    mask: u64,
    addr: VirtAddr,
    len: u64,
    req: MxRequest,
}

enum UnexpectedKind {
    /// Eager data already buffered host-side (ring buffer).
    Eager { payload: Option<Vec<u8>> },
    /// A rendezvous RTS waiting for a matching receive; completing it
    /// triggers the pull.
    Rts {
        pull: Box<dyn FnOnce(VirtAddr, u64, MxRequest)>,
    },
}

struct Unexpected {
    bits: MatchInfo,
    len: u64,
    kind: UnexpectedKind,
}

struct EndpointInner {
    posted: RefCell<VecDeque<Posted>>,
    unexpected: RefCell<VecDeque<Unexpected>>,
}

/// An open MX endpoint bound to one process.
pub struct MxEndpoint {
    sim: Sim,
    nic: Rc<MxNic>,
    cpu: Cpu,
    /// The MX progression thread's CPU context (a second core of the SMP
    /// hosts; rendezvous receive-side work runs here, which is why MX
    /// shows no receiver-overhead jump at the protocol switch).
    progression: Cpu,
    inner: Rc<EndpointInner>,
}

/// Address of a connected peer endpoint: its match lists plus the data
/// paths between the two NICs.
pub struct MxAddr {
    peer_inner: Rc<EndpointInner>,
    peer_nic: Rc<MxNic>,
    peer_progression: Cpu,
    /// local → peer.
    path_out: Pipeline,
    /// peer → local (rendezvous pulls).
    path_back: Pipeline,
    pkt_overhead: Bytes,
    /// Packet payload of the active link mode (resend granularity).
    pkt: Bytes,
    /// In-order matching per source endpoint (the MX guarantee).
    order: FifoGate,
    /// Connection id: `(src_node << 32) | dst_node`. Keys the fault plane's
    /// per-connection decision counter and tags conformance reports.
    conn_id: u64,
    /// Fault plane captured from the fabric at connect time.
    fault: FaultPlane,
    /// Receiver-side replay filter: drops messages the sender replayed
    /// after an ACK loss.
    replay: Rc<RefCell<ReplayFilter>>,
    /// Conformance oracle: messages from one source match in send order
    /// (rule `mx.match-order`).
    #[cfg(feature = "simcheck")]
    match_check: Rc<RefCell<simcheck::mx::MatchOrderOracle>>,
}

impl MxAddr {
    /// Replayed messages the receiving NIC's matching layer has dropped on
    /// this connection.
    pub fn replay_drops(&self) -> u64 {
        self.replay.borrow().drops()
    }
}

/// A rank-indexed table of connected peer addresses (slot `i` holds the
/// address of rank `i`'s endpoint; the owner's own slot is empty).
pub struct MxAddrTable {
    slots: Vec<Option<Rc<MxAddr>>>,
}

impl MxAddrTable {
    /// Build from per-rank optional addresses.
    pub fn new(slots: Vec<Option<Rc<MxAddr>>>) -> Self {
        MxAddrTable { slots }
    }

    /// The address of rank `dest`.
    pub fn get(&self, dest: usize) -> &MxAddr {
        self.slots[dest]
            .as_deref()
            .expect("no MX address for this rank")
    }
}

impl MxEndpoint {
    /// Open an endpoint on `node`, bound to the calling process `cpu`.
    pub fn open(fab: &MxFabric, node: usize, cpu: &Cpu) -> MxEndpoint {
        let nic = fab.device(node);
        MxEndpoint {
            sim: fab.sim().clone(),
            progression: Cpu::new(fab.sim(), cpu.costs()),
            nic,
            cpu: cpu.clone(),
            inner: Rc::new(EndpointInner {
                posted: RefCell::new(VecDeque::new()),
                unexpected: RefCell::new(VecDeque::new()),
            }),
        }
    }

    /// Resolve a peer endpoint into a sendable address (`mx_connect`).
    pub fn connect(&self, fab: &MxFabric, peer: &MxEndpoint) -> MxAddr {
        let conn_id = ((self.nic.node as u64) << 32) | peer.nic.node as u64;
        MxAddr {
            peer_inner: Rc::clone(&peer.inner),
            peer_nic: Rc::clone(&peer.nic),
            peer_progression: peer.progression.clone(),
            path_out: fab.data_path(self.nic.node, peer.nic.node),
            path_back: fab.data_path(peer.nic.node, self.nic.node),
            pkt_overhead: fab.per_packet_overhead(),
            pkt: fab.packet_payload(),
            order: FifoGate::new(),
            conn_id,
            fault: fab.fault_plane(),
            replay: Rc::new(RefCell::new(ReplayFilter::new())),
            #[cfg(feature = "simcheck")]
            match_check: Rc::new(RefCell::new(simcheck::mx::MatchOrderOracle::new(conn_id))),
        }
    }

    /// The owning process CPU.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The NIC under this endpoint.
    pub fn nic(&self) -> &Rc<MxNic> {
        &self.nic
    }

    /// Untimed instrumentation: does the unexpected list hold a message
    /// matching `(bits, mask)`?
    pub fn probe_unexpected(&self, bits: MatchInfo, mask: u64) -> bool {
        self.inner
            .unexpected
            .borrow()
            .iter()
            .any(|u| matches(u.bits, bits, mask))
    }

    /// Current unexpected-queue depth (for benchmark assertions).
    pub fn unexpected_depth(&self) -> usize {
        self.inner.unexpected.borrow().len()
    }

    /// Current posted-receive-queue depth.
    pub fn posted_depth(&self) -> usize {
        self.inner.posted.borrow().len()
    }

    /// Non-blocking matched send (`mx_isend`) of `len` bytes from the
    /// user buffer at `buf`.
    pub async fn isend(
        &self,
        dest: &MxAddr,
        bits: MatchInfo,
        buf: VirtAddr,
        len: u64,
        payload: Option<Vec<u8>>,
    ) -> MxRequest {
        self.cpu.work(self.nic.calib.post_cost).await;
        let req = MxRequest::new();
        if Bytes::new(len) < self.nic.calib.rndv_threshold {
            req.advance_phase(MxSendEvent::SelectEager);
            self.eager_send(dest, bits, len, payload, req.clone());
        } else {
            req.advance_phase(MxSendEvent::SelectRndv);
            self.rndv_send(dest, bits, buf, len, payload, req.clone())
                .await;
        }
        req
    }

    fn eager_send(
        &self,
        dest: &MxAddr,
        bits: MatchInfo,
        len: u64,
        payload: Option<Vec<u8>>,
        req: MxRequest,
    ) {
        // Conformance oracle: this path is the eager side of the protocol
        // switch (rule `mx.rndv-switch`).
        #[cfg(feature = "simcheck")]
        let _ = simcheck::mx::check_rndv_switch(
            len,
            self.nic.calib.rndv_threshold.get(),
            true,
            dest.conn_id,
            Some(self.sim.now().as_nanos()),
        );
        let path = dest.path_out.clone();
        let ovh = dest.pkt_overhead;
        let pkt = dest.pkt;
        let conn = dest.conn_id;
        let fault = dest.fault.clone();
        let replay = Rc::clone(&dest.replay);
        let peer_inner = Rc::clone(&dest.peer_inner);
        let peer_nic = Rc::clone(&dest.peer_nic);
        let peer_mem = peer_nic.mem.clone();
        let gate = dest.order.clone();
        let ticket = gate.ticket();
        #[cfg(feature = "simcheck")]
        let match_check = Rc::clone(&dest.match_check);
        let sim = self.sim.clone();
        self.sim.spawn(async move {
            let mut payload = payload;
            let rs = transfer_with_resend(
                &sim,
                &fault,
                &path,
                conn,
                Bytes::new(len),
                pkt,
                ovh,
                &MxTuning::myri(),
            )
            .await;
            // MX matches messages from one source in send order.
            gate.enter(ticket).await;
            #[cfg(feature = "simcheck")]
            let _ = match_check
                .borrow_mut()
                .observe_match(ticket, Some(sim.now().as_nanos()));
            // The first arrival claims this sequence number; ACK-loss
            // replays (already charged wire time by the resend engine)
            // arrive behind it and the matching layer drops them.
            let fresh = !fault.enabled() || replay.borrow_mut().accept(ticket);
            for _ in 0..rs.duplicates {
                let _ = replay.borrow_mut().accept(ticket);
            }
            if fresh {
                // NIC-side matching at the receiver. List mutations happen
                // atomically with the scan — the walk time is charged after —
                // so a receive posted while the walk retires cannot lose the
                // match.
                let (walked, matched) = {
                    let mut posted = peer_inner.posted.borrow_mut();
                    let pos = posted.iter().position(|p| matches(bits, p.bits, p.mask));
                    match pos {
                        Some(i) => (
                            i + 1,
                            Some(
                                posted
                                    .remove(i)
                                    .expect("position() returned an in-bounds index"),
                            ),
                        ),
                        None => {
                            let walked = posted.len();
                            peer_inner.unexpected.borrow_mut().push_back(Unexpected {
                                bits,
                                len,
                                kind: UnexpectedKind::Eager {
                                    payload: payload.take(),
                                },
                            });
                            (walked, None)
                        }
                    }
                };
                peer_nic
                    .match_walk(walked, peer_nic.calib.nic_match_posted_per_entry)
                    .await;
                if let Some(p) = matched {
                    if let Some(data) = payload {
                        peer_mem.write(p.addr, &data[..(p.len.min(len)) as usize]);
                    }
                    p.req.complete(len.min(p.len), bits);
                }
                req.advance_phase(MxSendEvent::DataDelivered);
                req.complete(len, bits);
            }
            gate.leave();
        });
    }

    async fn rndv_send(
        &self,
        dest: &MxAddr,
        bits: MatchInfo,
        buf: VirtAddr,
        len: u64,
        payload: Option<Vec<u8>>,
        req: MxRequest,
    ) {
        // Conformance oracle: this path is the rendezvous side of the
        // protocol switch (rule `mx.rndv-switch`).
        #[cfg(feature = "simcheck")]
        let _ = simcheck::mx::check_rndv_switch(
            len,
            self.nic.calib.rndv_threshold.get(),
            false,
            dest.conn_id,
            Some(self.sim.now().as_nanos()),
        );
        // MX pins the send buffer through its registration cache before
        // announcing the message (charged to the sending process).
        self.nic.registry.register_cached(&self.cpu, buf, len).await;
        let path_out = dest.path_out.clone();
        let path_back_unused = dest.path_back.clone();
        let ovh = dest.pkt_overhead;
        let pkt = dest.pkt;
        let conn = dest.conn_id;
        let fault = dest.fault.clone();
        let replay = Rc::clone(&dest.replay);
        let peer_inner = Rc::clone(&dest.peer_inner);
        let peer_nic = Rc::clone(&dest.peer_nic);
        let peer_progression = dest.peer_progression.clone();
        let sim = self.sim.clone();
        let sreq = req.clone();
        let gate = dest.order.clone();
        let ticket = gate.ticket();
        #[cfg(feature = "simcheck")]
        let match_check = Rc::clone(&dest.match_check);
        self.sim.spawn(async move {
            // RTS travels as a small control message.
            let rs = transfer_with_resend(
                &sim,
                &fault,
                &path_out,
                conn,
                Bytes::new(32),
                pkt,
                ovh,
                &MxTuning::myri(),
            )
            .await;
            // The RTS envelope matches in send order, like any message.
            gate.enter(ticket).await;
            #[cfg(feature = "simcheck")]
            let _ = match_check
                .borrow_mut()
                .observe_match(ticket, Some(sim.now().as_nanos()));
            // A replayed RTS (its ACK was lost) must not announce the
            // message twice: the matching layer drops it by sequence.
            let fresh = !fault.enabled() || replay.borrow_mut().accept(ticket);
            for _ in 0..rs.duplicates {
                let _ = replay.borrow_mut().accept(ticket);
            }
            if !fresh {
                gate.leave();
                return;
            }
            let _ = &path_back_unused;
            // Build the pull closure: runs when a matching receive exists.
            let peer_mem = peer_nic.mem.clone();
            let peer_nic2 = Rc::clone(&peer_nic);
            let path_data = path_out.clone();
            let sim2 = sim.clone();
            let fault2 = fault.clone();
            let pull: Box<dyn FnOnce(VirtAddr, u64, MxRequest)> =
                Box::new(move |raddr, rlen, rreq| {
                    let n = len.min(rlen);
                    let bits = bits;
                    let sim3 = sim2.clone();
                    sim2.spawn(async move {
                        // Progression thread wakes, pins the receive buffer
                        // through the cache, sends CTS (reverse small
                        // message folded into its wakeup cost), and the
                        // sender NIC streams the data.
                        peer_progression
                            .work(peer_nic2.calib.progression_wakeup)
                            .await;
                        peer_nic2
                            .registry
                            .register_cached(&peer_progression, raddr, n)
                            .await;
                        sreq.advance_phase(MxSendEvent::CtsArrived);
                        // The pull data resends like any MX traffic; a
                        // duplicate here rewrites the same bytes, so no
                        // dedup is needed beyond the engine's accounting.
                        transfer_with_resend(
                            &sim3,
                            &fault2,
                            &path_data,
                            conn,
                            Bytes::new(n),
                            pkt,
                            ovh,
                            &MxTuning::myri(),
                        )
                        .await;
                        if let Some(data) = payload {
                            peer_mem.write(raddr, &data[..n as usize]);
                        }
                        rreq.complete(n, bits);
                        sreq.advance_phase(MxSendEvent::DataDelivered);
                        sreq.complete(n, bits);
                    });
                });
            // Match the RTS against posted receives; the unexpected-list
            // insertion is atomic with the scan (see the eager path), so a
            // receive posted during the walk cannot lose the match.
            let hit = {
                let mut posted = peer_inner.posted.borrow_mut();
                match posted.iter().position(|p| matches(bits, p.bits, p.mask)) {
                    Some(i) => Ok((
                        i + 1,
                        posted
                            .remove(i)
                            .expect("position() returned an in-bounds index"),
                    )),
                    None => Err(posted.len()),
                }
            };
            match hit {
                Ok((walked, p)) => {
                    gate.leave();
                    peer_nic
                        .match_walk(walked, peer_nic.calib.nic_match_posted_per_entry)
                        .await;
                    pull(p.addr, p.len, p.req);
                }
                Err(walked) => {
                    gate.leave();
                    peer_inner.unexpected.borrow_mut().push_back(Unexpected {
                        bits,
                        len,
                        kind: UnexpectedKind::Rts { pull },
                    });
                    peer_nic
                        .match_walk(walked, peer_nic.calib.nic_match_posted_per_entry)
                        .await;
                }
            }
        });
    }

    /// Non-blocking matched receive (`mx_irecv`).
    pub async fn irecv(&self, bits: MatchInfo, mask: u64, addr: VirtAddr, len: u64) -> MxRequest {
        self.cpu.work(self.nic.calib.post_cost).await;
        let req = MxRequest::new();
        // Probe the unexpected list and, on a miss, enqueue the posted
        // receive in the same synchronous step — a message arriving while
        // the walk cost retires must find either the unexpected entry gone
        // or the posted receive present, never neither.
        let (walked, hit) = {
            let mut unex = self.inner.unexpected.borrow_mut();
            let pos = unex.iter().position(|u| matches(u.bits, bits, mask));
            match pos {
                Some(i) => (
                    i + 1,
                    Some(
                        unex.remove(i)
                            .expect("position() returned an in-bounds index"),
                    ),
                ),
                None => {
                    let walked = unex.len();
                    self.inner.posted.borrow_mut().push_back(Posted {
                        bits,
                        mask,
                        addr,
                        len,
                        req: req.clone(),
                    });
                    (walked, None)
                }
            }
        };
        self.nic
            .match_walk(walked, self.nic.calib.nic_match_unexpected_per_entry)
            .await;
        if let Some(u) = hit {
            match u.kind {
                UnexpectedKind::Eager { payload } => {
                    let n = u.len.min(len);
                    // Unexpected eager data was parked in the host ring;
                    // the receiving process copies it out.
                    self.cpu.memcpy(Bytes::new(n)).await;
                    if let Some(data) = payload {
                        self.nic.mem.write(addr, &data[..n as usize]);
                    }
                    req.complete(n, u.bits);
                }
                UnexpectedKind::Rts { pull } => pull(addr, len, req.clone()),
            }
        }
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::LinkMode;
    use hostmodel::cpu::CpuCosts;
    use simnet::sync::join2;

    fn setup(mode: LinkMode) -> (Sim, MxFabric, MxEndpoint, MxEndpoint) {
        let sim = Sim::new();
        let fab = MxFabric::new(&sim, 2, mode);
        let cpu_a = Cpu::new(&sim, CpuCosts::default());
        let cpu_b = Cpu::new(&sim, CpuCosts::default());
        let ea = MxEndpoint::open(&fab, 0, &cpu_a);
        let eb = MxEndpoint::open(&fab, 1, &cpu_b);
        (sim, fab, ea, eb)
    }

    #[test]
    fn eager_send_recv_delivers_data() {
        let (sim, fab, ea, eb) = setup(LinkMode::MxoM);
        sim.block_on(async move {
            let addr_b = ea.connect(&fab, &eb);
            let rbuf = eb.nic().mem.alloc_buffer(256);
            let r = eb
                .irecv(MatchInfo::mpi(0, 0, 7), MatchInfo::EXACT, rbuf, 256)
                .await;
            let s = ea
                .isend(
                    &addr_b,
                    MatchInfo::mpi(0, 0, 7),
                    ea.nic().mem.alloc_buffer(64),
                    5,
                    Some(b"lanai".to_vec()),
                )
                .await;
            let st = r.wait().await;
            assert_eq!(st.len, 5);
            s.wait().await;
            assert_eq!(eb.nic().mem.read(rbuf, 5), b"lanai");
            assert_eq!(s.send_phase(), MxSendPhase::Complete);
        });
    }

    /// The crate machine and the conformance table must agree on every
    /// (phase, event) pair — the runtime complement of the static
    /// `fsm-drift` diff in `simlint --dataflow`.
    #[cfg(feature = "simcheck")]
    #[test]
    fn send_machine_matches_simcheck_table_exhaustively() {
        use MxSendEvent::{CtsArrived, DataDelivered, SelectEager, SelectRndv};
        use MxSendPhase::{Complete, EagerData, Matching, RndvData, RndvHandshake};
        for from in [Matching, EagerData, RndvHandshake, RndvData, Complete] {
            for ev in [SelectEager, SelectRndv, CtsArrived, DataDelivered] {
                let machine = fsm_next(from, ev).map(MxSendPhase::table_name);
                let table = simcheck::fsm_lookup(
                    simcheck::mx::MX_FSM_TABLE,
                    from.table_name(),
                    ev.table_name(),
                );
                assert_eq!(machine, table, "{from:?} --{ev:?}--> disagrees");
            }
        }
    }

    #[test]
    fn tag_mismatch_goes_unexpected_until_matching_recv() {
        let (sim, fab, ea, eb) = setup(LinkMode::MxoM);
        sim.block_on(async move {
            let addr_b = ea.connect(&fab, &eb);
            let s = ea
                .isend(
                    &addr_b,
                    MatchInfo::mpi(0, 0, 42),
                    ea.nic().mem.alloc_buffer(64),
                    4,
                    Some(b"late".to_vec()),
                )
                .await;
            s.wait().await;
            assert_eq!(eb.unexpected_depth(), 1);
            // A receive with a different tag must NOT match.
            let rbuf = eb.nic().mem.alloc_buffer(64);
            let r_other = eb
                .irecv(MatchInfo::mpi(0, 0, 1), MatchInfo::EXACT, rbuf, 64)
                .await;
            assert!(r_other.test().is_none());
            assert_eq!(eb.posted_depth(), 1);
            // The right tag drains the unexpected queue.
            let rbuf2 = eb.nic().mem.alloc_buffer(64);
            let r = eb
                .irecv(MatchInfo::mpi(0, 0, 42), MatchInfo::EXACT, rbuf2, 64)
                .await;
            assert_eq!(r.wait().await.len, 4);
            assert_eq!(eb.nic().mem.read(rbuf2, 4), b"late");
            assert_eq!(eb.unexpected_depth(), 0);
        });
    }

    #[test]
    fn wildcard_mask_matches_any_tag() {
        let (sim, fab, ea, eb) = setup(LinkMode::MxoE);
        sim.block_on(async move {
            let addr_b = ea.connect(&fab, &eb);
            let rbuf = eb.nic().mem.alloc_buffer(64);
            let r = eb
                .irecv(MatchInfo::mpi(0, 0, 0), MatchInfo::ANY_TAG_MASK, rbuf, 64)
                .await;
            ea.isend(
                &addr_b,
                MatchInfo::mpi(0, 0, 999),
                ea.nic().mem.alloc_buffer(64),
                2,
                Some(b"ok".to_vec()),
            )
            .await;
            assert_eq!(r.wait().await.len, 2);
        });
    }

    #[test]
    fn rendezvous_transfers_large_messages_zero_copy() {
        let (sim, fab, ea, eb) = setup(LinkMode::MxoM);
        sim.block_on(async move {
            let addr_b = ea.connect(&fab, &eb);
            let n = 64 * 1024u64;
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let rbuf = eb.nic().mem.alloc_buffer(n);
            let r = eb
                .irecv(MatchInfo::mpi(0, 0, 3), MatchInfo::EXACT, rbuf, n)
                .await;
            let s = ea
                .isend(
                    &addr_b,
                    MatchInfo::mpi(0, 0, 3),
                    ea.nic().mem.alloc_buffer(n),
                    n,
                    Some(data.clone()),
                )
                .await;
            let (rs, ss) = join2(r.wait(), s.wait()).await;
            assert_eq!(rs.len, n);
            assert_eq!(ss.len, n);
            assert_eq!(eb.nic().mem.read(rbuf, n), data);
        });
    }

    #[test]
    fn rendezvous_rts_waits_for_late_receive() {
        let (sim, fab, ea, eb) = setup(LinkMode::MxoM);
        sim.block_on(async move {
            let addr_b = ea.connect(&fab, &eb);
            let n = 128 * 1024u64;
            let sb = ea.nic().mem.alloc_buffer(n);
            let s = ea
                .isend(&addr_b, MatchInfo::mpi(0, 1, 9), sb, n, None)
                .await;
            // Sender must NOT complete: no receive exists yet.
            assert!(s.test().is_none());
            let rbuf = eb.nic().mem.alloc_buffer(n);
            let r = eb
                .irecv(MatchInfo::mpi(0, 1, 9), MatchInfo::EXACT, rbuf, n)
                .await;
            let (rs, _ss) = join2(r.wait(), s.wait()).await;
            assert_eq!(rs.len, n);
        });
    }

    #[test]
    fn mxom_pingpong_half_rtt_matches_paper() {
        // Paper anchors: 3.05 µs (MXoM), 3.45 µs (MXoE).
        for (mode, want) in [(LinkMode::MxoM, 3.05), (LinkMode::MxoE, 3.45)] {
            let (sim, fab, ea, eb) = setup(mode);
            let t = sim.block_on(async move {
                let addr_b = ea.connect(&fab, &eb);
                let addr_a = eb.connect(&fab, &ea);
                let buf_a = ea.nic().mem.alloc_buffer(64);
                let buf_b = eb.nic().mem.alloc_buffer(64);
                let iters = 50u64;
                let sim2 = fab.sim().clone();
                let t0 = sim2.now();
                let tag = MatchInfo::mpi(0, 0, 1);
                let ping = async {
                    for _ in 0..iters {
                        let s = ea.isend(&addr_b, tag, buf_a, 4, None).await;
                        let r = ea.irecv(tag, MatchInfo::EXACT, buf_a, 64).await;
                        s.wait().await;
                        r.wait().await;
                    }
                };
                let pong = async {
                    for _ in 0..iters {
                        let r = eb.irecv(tag, MatchInfo::EXACT, buf_b, 64).await;
                        r.wait().await;
                        let s = eb.isend(&addr_a, tag, buf_b, 4, None).await;
                        s.wait().await;
                    }
                };
                join2(ping, pong).await;
                (sim2.now() - t0).as_micros_f64() / (2.0 * iters as f64)
            });
            assert!(
                (t - want).abs() < 0.25,
                "{mode:?} half-RTT {t:.2} µs, paper says {want}"
            );
        }
    }

    #[test]
    fn eager_sends_complete_exactly_once_under_loss() {
        // 2% loss: every message still arrives exactly once; ACK-loss
        // replays are dropped by the matching layer's replay filter.
        let run_once = || {
            let sim = Sim::new();
            let fab = MxFabric::new(&sim, 2, LinkMode::MxoM);
            fab.set_fault_plane(simnet::FaultPlane::new(simnet::FaultConfig::loss(
                20_000, 77,
            )));
            let cpu_a = Cpu::new(&sim, CpuCosts::default());
            let cpu_b = Cpu::new(&sim, CpuCosts::default());
            let ea = MxEndpoint::open(&fab, 0, &cpu_a);
            let eb = MxEndpoint::open(&fab, 1, &cpu_b);
            let (elapsed, drops, stats) = sim.block_on({
                let sim2 = sim.clone();
                async move {
                    let addr_b = Rc::new(ea.connect(&fab, &eb));
                    let rbuf = eb.nic().mem.alloc_buffer(256);
                    for i in 0..60u32 {
                        let tag = MatchInfo::mpi(0, 0, i);
                        let r = eb.irecv(tag, MatchInfo::EXACT, rbuf, 256).await;
                        let s = ea
                            .isend(
                                &addr_b,
                                tag,
                                ea.nic().mem.alloc_buffer(64),
                                5,
                                Some(b"lanai".to_vec()),
                            )
                            .await;
                        let st = r.wait().await;
                        assert_eq!(st.len, 5, "message {i} truncated");
                        s.wait().await;
                        assert_eq!(eb.nic().mem.read(rbuf, 5), b"lanai");
                    }
                    assert_eq!(eb.unexpected_depth(), 0);
                    assert_eq!(eb.posted_depth(), 0);
                    (sim2.now().as_nanos(), addr_b.replay_drops(), sim2.stats())
                }
            });
            assert!(stats.faults_injected > 0, "2% over 120 judges hit none");
            (elapsed, drops, stats.faults_injected, stats.retransmits)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "lossy MX run must be deterministic");
    }

    #[test]
    fn ack_loss_replays_are_filtered_by_the_matching_layer() {
        // 20% loss makes ACK drops near-certain over 20 messages; each one
        // replays a message the receiver already matched, and the replay
        // filter must drop it (the exactly-once checks above would fail or
        // the posted queue would underflow otherwise).
        let sim = Sim::new();
        let fab = MxFabric::new(&sim, 2, LinkMode::MxoM);
        fab.set_fault_plane(simnet::FaultPlane::new(simnet::FaultConfig::loss(
            200_000, 9,
        )));
        let cpu_a = Cpu::new(&sim, CpuCosts::default());
        let cpu_b = Cpu::new(&sim, CpuCosts::default());
        let ea = MxEndpoint::open(&fab, 0, &cpu_a);
        let eb = MxEndpoint::open(&fab, 1, &cpu_b);
        let drops = sim.block_on(async move {
            let addr_b = Rc::new(ea.connect(&fab, &eb));
            let rbuf = eb.nic().mem.alloc_buffer(64);
            for i in 0..20u32 {
                let tag = MatchInfo::mpi(0, 0, i);
                let r = eb.irecv(tag, MatchInfo::EXACT, rbuf, 64).await;
                let s = ea
                    .isend(
                        &addr_b,
                        tag,
                        ea.nic().mem.alloc_buffer(16),
                        4,
                        Some(b"once".to_vec()),
                    )
                    .await;
                assert_eq!(r.wait().await.len, 4);
                s.wait().await;
            }
            assert_eq!(eb.unexpected_depth(), 0);
            addr_b.replay_drops()
        });
        assert!(drops > 0, "no ACK loss replay reached the filter");
    }

    #[test]
    fn posted_queue_walk_is_charged_per_entry() {
        // Pre-post many non-matching receives; the matching one at the back
        // costs a longer NIC walk — the Fig. 8 mechanism.
        let (sim, fab, ea, eb) = setup(LinkMode::MxoM);
        let (t_short, t_long) = sim.block_on(async move {
            let addr_b = ea.connect(&fab, &eb);
            let sim2 = fab.sim().clone();
            let buf = eb.nic().mem.alloc_buffer(64);
            // Short queue.
            let r = eb
                .irecv(MatchInfo::mpi(0, 0, 5), MatchInfo::EXACT, buf, 64)
                .await;
            let t0 = sim2.now();
            ea.isend(&addr_b, MatchInfo::mpi(0, 0, 5), buf, 4, None)
                .await;
            r.wait().await;
            let t_short = sim2.now() - t0;
            // Long queue: 200 decoys in front.
            for i in 0..200u32 {
                eb.irecv(MatchInfo::mpi(1, 0, i), MatchInfo::EXACT, buf, 64)
                    .await;
            }
            let r = eb
                .irecv(MatchInfo::mpi(0, 0, 6), MatchInfo::EXACT, buf, 64)
                .await;
            let t0 = sim2.now();
            ea.isend(&addr_b, MatchInfo::mpi(0, 0, 6), buf, 4, None)
                .await;
            r.wait().await;
            (t_short, sim2.now() - t0)
        });
        let per_entry = MyriCalib::default().nic_match_posted_per_entry;
        let delta = (t_long - t_short).as_nanos() as i64;
        let want = (per_entry.as_nanos() * 200) as i64;
        assert!(
            (delta - want).abs() <= want / 5 + 100,
            "queue walk delta {delta} ns, want ≈ {want} ns"
        );
    }

    use crate::calib::MyriCalib;
}
