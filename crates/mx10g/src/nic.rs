//! The Myri-10G NIC hardware model and fabric wiring (MXoM / MXoE).

use std::rc::Rc;

use etherstack::switch::{CutThroughSwitch, SwitchConfig};
use hostmodel::mem::HostMem;
use hostmodel::pcie::PciePort;
use hostmodel::MemoryRegistry;
use simnet::{FaultPlane, Pipe, Pipeline, Sim, SimDuration, Stage};

use crate::calib::MyriCalib;

/// Which link layer the fabric runs over. Same NICs, same MX library —
/// different switch and framing, exactly as Myricom shipped it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkMode {
    /// MX over the Myrinet crossbar switch.
    MxoM,
    /// MX over a 10-Gigabit Ethernet switch.
    MxoE,
}

/// One Myri-10G NIC in one host.
pub struct MxNic {
    sim: Sim,
    /// Node index.
    pub node: usize,
    /// Calibration in effect.
    pub calib: MyriCalib,
    /// PCIe slot (x4 on this testbed — the bandwidth cap).
    pub pcie: PciePort,
    /// Host memory.
    pub mem: HostMem,
    /// MX's internal registration cache.
    pub registry: MemoryRegistry,
    /// Lanai firmware TX path.
    pub lanai_tx: Pipe,
    /// Lanai firmware RX path (also walks the match lists).
    pub lanai_rx: Pipe,
    /// Host-to-switch wire.
    pub link_tx: Pipe,
}

impl MxNic {
    fn new(sim: &Sim, node: usize, calib: MyriCalib) -> Self {
        MxNic {
            sim: sim.clone(),
            node,
            calib,
            pcie: PciePort::new(sim, calib.pcie),
            mem: HostMem::new(),
            registry: MemoryRegistry::new(calib.registration),
            lanai_tx: Pipe::new(sim, calib.lanai_tx_bytes_per_sec, calib.lanai_tx_overhead),
            lanai_rx: Pipe::new(sim, calib.lanai_rx_bytes_per_sec, calib.lanai_rx_overhead),
            link_tx: Pipe::new(sim, calib.link_bytes_per_sec, SimDuration::ZERO),
        }
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Occupy the RX Lanai for a match-list walk of `entries` entries at
    /// `per_entry` cost, returning when the walk retires.
    pub async fn match_walk(&self, entries: usize, per_entry: SimDuration) {
        if entries == 0 {
            return;
        }
        let (_s, end) = self.lanai_rx.occupy(per_entry * entries as u64);
        self.sim.sleep_until(end).await;
    }
}

/// A Myri-10G fabric in one of the two link modes.
pub struct MxFabric {
    sim: Sim,
    /// Link mode in effect.
    pub mode: LinkMode,
    switch: CutThroughSwitch,
    devices: Vec<Rc<MxNic>>,
    /// Memoized `src → dst` pipelines; clones share the cached stage slice
    /// so repeat transfers stay eligible for the simnet cut-through fast
    /// path without rebuilding the six stages per call.
    paths: std::cell::RefCell<std::collections::BTreeMap<(usize, usize), Pipeline>>,
    /// Fault plane addresses capture at connect time (disabled by default).
    fault: std::cell::RefCell<FaultPlane>,
}

impl MxFabric {
    /// Build a fabric of `nodes` hosts with default calibration.
    pub fn new(sim: &Sim, nodes: usize, mode: LinkMode) -> Self {
        Self::with_calib(sim, nodes, mode, MyriCalib::default())
    }

    /// Build with explicit calibration.
    pub fn with_calib(sim: &Sim, nodes: usize, mode: LinkMode, calib: MyriCalib) -> Self {
        assert!(nodes >= 2, "a fabric needs at least two nodes");
        let sw_cfg = match mode {
            LinkMode::MxoM => SwitchConfig::myri_10g(),
            LinkMode::MxoE => SwitchConfig::xg700(),
        };
        MxFabric {
            sim: sim.clone(),
            mode,
            switch: CutThroughSwitch::new(sim, sw_cfg, nodes),
            devices: (0..nodes)
                .map(|n| Rc::new(MxNic::new(sim, n, calib)))
                .collect(),
            paths: std::cell::RefCell::new(std::collections::BTreeMap::new()),
            fault: std::cell::RefCell::new(FaultPlane::disabled()),
        }
    }

    /// Install a fault plane. Addresses resolved *after* this call judge
    /// every packet against it; with the plane disabled (the default) the
    /// fabric is bit-identical to the fault-free build.
    pub fn set_fault_plane(&self, plane: FaultPlane) {
        // Key the transfer memo on the plane's configuration: outcomes
        // cached fault-free never replay under faults (see `simnet::memo`).
        self.sim.set_fault_fingerprint(plane.fingerprint());
        *self.fault.borrow_mut() = plane;
    }

    /// The currently installed fault plane (cloned; clones share state).
    pub fn fault_plane(&self) -> FaultPlane {
        self.fault.borrow().clone()
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// NIC in node `n`.
    pub fn device(&self, n: usize) -> Rc<MxNic> {
        Rc::clone(&self.devices[n])
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.devices.len()
    }

    /// Packet payload size for the active link mode.
    pub fn packet_payload(&self) -> simnet::Bytes {
        let c = &self.devices[0].calib;
        match self.mode {
            LinkMode::MxoM => c.mxom_packet_payload,
            LinkMode::MxoE => c.mxoe_packet_payload,
        }
    }

    /// Per-packet overhead bytes for the active link mode.
    pub fn per_packet_overhead(&self) -> simnet::Bytes {
        let c = &self.devices[0].calib;
        match self.mode {
            LinkMode::MxoM => c.mxom_packet_overhead,
            LinkMode::MxoE => c.mxoe_packet_overhead,
        }
    }

    /// The one-directional data path `src → dst`, built once per pair and
    /// cached.
    pub fn data_path(&self, src: usize, dst: usize) -> Pipeline {
        assert_ne!(src, dst, "loopback is not modelled");
        if let Some(p) = self.paths.borrow().get(&(src, dst)) {
            return p.clone();
        }
        let path = self.build_data_path(src, dst);
        self.paths.borrow_mut().insert((src, dst), path.clone());
        path
    }

    fn build_data_path(&self, src: usize, dst: usize) -> Pipeline {
        let s = &self.devices[src];
        let d = &self.devices[dst];
        let c = &s.calib;
        let stages = vec![
            Stage::new(s.pcie.to_device_pipe().clone(), c.pcie.dma_latency),
            Stage::new(s.lanai_tx.clone(), c.lanai_tx_latency),
            Stage::new(s.link_tx.clone(), c.link_latency),
            self.switch.stage_to(dst),
            Stage::new(d.lanai_rx.clone(), d.calib.lanai_rx_latency),
            Stage::new(
                d.pcie.to_host_pipe().clone(),
                SimDuration::from_nanos(d.calib.pcie.dma_latency.as_nanos() / 2),
            ),
        ];
        Pipeline::new(&self.sim, stages, self.packet_payload())
    }
}

/// Host-local halves of the Myri-10G data path for the given link mode,
/// for endpoint-to-shard placement in sharded cluster runs
/// ([`simnet::shard`]). Split from [`MxFabric::data_path`] at the switch
/// hop: TX Lanai and wire serialization as `egress`, this host's switch
/// egress port plus the RX Lanai and DMA as `ingress`, with the mode's
/// switch (Myricom crossbar for MXoM, XG700 for MXoE) contributing its
/// forwarding delay as the cross-shard `wire_latency`.
pub fn shard_host_path(sim: &Sim, mode: LinkMode, calib: MyriCalib) -> simnet::shard::HostPath {
    shard_host_path_at(sim, 0, mode, calib)
}

/// [`shard_host_path`] for an explicit host placement: the NIC is built
/// as node `node`, so multiple hosts materialized on *one* calendar (the
/// open-loop workload engine's client/server pair) get distinct devices
/// with private pipes instead of two aliases of node 0.
pub fn shard_host_path_at(
    sim: &Sim,
    node: usize,
    mode: LinkMode,
    calib: MyriCalib,
) -> simnet::shard::HostPath {
    let dev = MxNic::new(sim, node, calib);
    let c = dev.calib;
    let (cfg, payload, overhead) = match mode {
        LinkMode::MxoM => (
            SwitchConfig::myri_10g(),
            c.mxom_packet_payload,
            c.mxom_packet_overhead,
        ),
        LinkMode::MxoE => (
            SwitchConfig::xg700(),
            c.mxoe_packet_payload,
            c.mxoe_packet_overhead,
        ),
    };
    let egress = Pipeline::new(
        sim,
        vec![
            Stage::new(dev.pcie.to_device_pipe().clone(), c.pcie.dma_latency),
            Stage::new(dev.lanai_tx.clone(), c.lanai_tx_latency),
            Stage::new(dev.link_tx.clone(), c.link_latency),
        ],
        payload,
    );
    let ingress = Pipeline::new(
        sim,
        vec![
            Stage::new(
                Pipe::new(sim, cfg.port_bytes_per_sec, SimDuration::ZERO),
                SimDuration::ZERO,
            ),
            Stage::new(dev.lanai_rx.clone(), c.lanai_rx_latency),
            Stage::new(
                dev.pcie.to_host_pipe().clone(),
                SimDuration::from_nanos(c.pcie.dma_latency.as_nanos() / 2),
            ),
        ],
        payload,
    );
    simnet::shard::HostPath {
        egress,
        ingress,
        wire_latency: cfg.forwarding_latency,
        overhead_bytes: overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_pcie_x4_limited_near_940() {
        for mode in [LinkMode::MxoM, LinkMode::MxoE] {
            let sim = Sim::new();
            let fab = MxFabric::new(&sim, 2, mode);
            let path = fab.data_path(0, 1);
            let ovh = fab.per_packet_overhead();
            let bytes: u64 = 8 << 20;
            sim.block_on(async move { path.transfer(simnet::Bytes::new(bytes), ovh).await });
            let mbps = bytes as f64 / sim.now().as_secs_f64() / 1e6;
            assert!(
                (850.0..985.0).contains(&mbps),
                "{mode:?} unidirectional {mbps:.0} MB/s, want ≤75% of line rate (~940)"
            );
        }
    }

    #[test]
    fn mxom_and_mxoe_differ_only_in_switch_and_framing() {
        let sim = Sim::new();
        let m = MxFabric::new(&sim, 2, LinkMode::MxoM);
        let e = MxFabric::new(&sim, 2, LinkMode::MxoE);
        assert!(m.packet_payload() > e.packet_payload());
        assert!(m.per_packet_overhead() < e.per_packet_overhead());
    }

    #[test]
    fn match_walk_costs_scale_with_entries() {
        let sim = Sim::new();
        let fab = MxFabric::new(&sim, 2, LinkMode::MxoM);
        let dev = fab.device(0);
        let per = dev.calib.nic_match_posted_per_entry;
        let t = {
            let dev = Rc::clone(&dev);
            let sim2 = sim.clone();
            sim.block_on(async move {
                dev.match_walk(100, per).await;
                sim2.now()
            })
        };
        assert_eq!(t.as_nanos(), per.as_nanos() * 100);
    }
}
