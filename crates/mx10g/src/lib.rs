//! # mx10g — Myricom MX-10G message-passing library model
//!
//! The third fabric of the comparison. MX (Myrinet Express) differs from
//! the verbs-based fabrics in kind, not just constants:
//!
//! * The API is **two-sided matched send/receive** (`mx_isend` /
//!   `mx_irecv` with 64-bit match bits) — semantically close to MPI, which
//!   is why MPICH-MX shows the lowest MPI-over-user-level overhead in the
//!   paper.
//! * **Matching runs on the NIC**: the Lanai processor walks the posted
//!   and unexpected lists. That makes unexpected-message handling cheap
//!   (Fig. 7, MX best) but long posted-receive lists expensive (Fig. 8,
//!   MX worst) because the embedded processor walks them slowly.
//! * Large messages switch to an internal **rendezvous** at 32 KB with an
//!   internal registration cache — the paper's Fig. 1 bandwidth dip and the
//!   small Fig. 6 buffer-reuse effect both come from here.
//! * The same NIC and library run over a Myrinet switch (**MXoM**) or a
//!   10GbE switch (**MXoE**); the paper measures both.

#![forbid(unsafe_code)]

pub mod calib;
pub mod endpoint;
pub mod matching;
pub mod nic;
pub mod recovery;

pub use calib::MyriCalib;
pub use endpoint::{MxAddr, MxAddrTable, MxEndpoint, MxRequest, MxStatus};
pub use matching::{matches, MatchInfo, ReplayFilter};
pub use nic::{shard_host_path, shard_host_path_at, LinkMode, MxFabric, MxNic};
pub use recovery::{transfer_with_resend, MxResendStats, MxTuning};
