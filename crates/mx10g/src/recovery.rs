//! MX sender-side resend over a [`Pipeline`]: timeout-driven retransmission
//! with whole-message replays on ACK loss.
//!
//! Myrinet's link layer is reliable in practice but MX does not assume it:
//! the Lanai firmware keeps every sent message until the receiver's ACK
//! returns and **resends on a timer** — there is no receiver NAK and no
//! duplicate-ACK machinery, so every loss (data *or* ACK) costs a resend
//! timeout, backed off exponentially on consecutive expiries. A lost ACK
//! makes the sender replay a message the receiver already has; the
//! receiving NIC's matching layer filters those replays by sequence number
//! ([`crate::matching::ReplayFilter`]) so the application sees each message
//! exactly once.
//!
//! The transfer is judged packet-by-packet against a [`FaultPlane`];
//! contiguous delivered runs are streamed in one reservation so a healthy
//! stream keeps the cut-through fast path. After the data lands, the ACK is
//! judged too: each lost ACK charges a timeout and one full-message replay
//! on the wire (reported in [`MxResendStats::duplicates`] for the caller's
//! dedup filter).
//!
//! With the plane disabled the function is one branch and a tail call to
//! [`Pipeline::transfer`] — bit-identical to the pre-fault code path.

use simnet::{Bytes, FaultDecision, FaultPlane, Pipeline, Sim, SimDuration};

/// Resend-timer calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MxTuning {
    /// Firmware resend timeout: fires when a packet's (or the message's)
    /// ACK has not returned.
    pub resend_timeout: SimDuration,
    /// Consecutive-timeout ceiling: the timer doubles per attempt up to
    /// `resend_timeout << max_backoff_exp`.
    pub max_backoff_exp: u32,
    /// Resend attempts per packet (and per ACK) before the model forces
    /// progress so pathological configured rates still terminate; real
    /// firmware declares the peer dead.
    pub max_retries: u32,
}

impl MxTuning {
    /// Timers scaled to the Myri-10G fabric's ~3 µs RTT.
    pub fn myri() -> Self {
        MxTuning {
            resend_timeout: SimDuration::from_micros(25),
            max_backoff_exp: 6,
            max_retries: 16,
        }
    }
}

impl Default for MxTuning {
    fn default() -> Self {
        MxTuning::myri()
    }
}

/// What one resending transfer cost (the same quantities accumulate
/// globally in [`simnet::SimStats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MxResendStats {
    /// Faults this transfer absorbed (data and ACK; drops + corruptions +
    /// delays).
    pub faults: u64,
    /// Packets retransmitted (ACK replays count the whole message).
    pub retransmits: u64,
    /// Resend-timer expiries.
    pub rto_fires: u64,
    /// Whole-message replays caused by lost ACKs — already charged wire
    /// time here; the caller's matching layer must drop them by sequence.
    pub duplicates: u64,
}

/// Stream `bytes` through `path` in `pkt`-sized packets with MX sender-side
/// resend against `plane`, then see the message's ACK home. Resolves when
/// the last byte (of the final replay, if ACKs were lost) clears the
/// pipeline; with the plane disabled this is exactly [`Pipeline::transfer`].
/// `stream` keys the plane's per-connection decision counter and tags
/// conformance reports.
#[allow(clippy::too_many_arguments)]
pub async fn transfer_with_resend(
    sim: &Sim,
    plane: &FaultPlane,
    path: &Pipeline,
    stream: u64,
    bytes: Bytes,
    pkt: Bytes,
    per_packet_overhead: Bytes,
    tuning: &MxTuning,
) -> MxResendStats {
    if !plane.enabled() {
        path.transfer(bytes, per_packet_overhead).await;
        return MxResendStats::default();
    }
    let pkt = pkt.max(Bytes::new(1));
    let npkts = bytes.div_ceil(pkt).max(1);
    // Byte length of the packet run [lo, hi): full packets plus a short tail.
    let run_bytes = |lo: u64, hi: u64| -> Bytes {
        if hi == npkts {
            bytes - pkt * lo
        } else {
            pkt * (hi - lo)
        }
    };
    let mut stats = MxResendStats::default();
    #[cfg(feature = "simcheck")]
    let mut oracle = simcheck::fault::DeliveryOracle::new("mx", stream, npkts);
    #[cfg(feature = "simcheck")]
    let mut observe_run = |lo: u64, hi: u64, now_ns: u64| {
        for idx in lo..hi {
            let _ = oracle.on_deliver(idx, Some(now_ns));
        }
    };

    let mut run_start = 0u64;
    let mut i = 0u64;
    while i < npkts {
        match plane.judge(sim, stream) {
            FaultDecision::Deliver => {
                i += 1;
            }
            FaultDecision::Delay => {
                stats.faults += 1;
                path.transfer(run_bytes(run_start, i + 1), per_packet_overhead)
                    .await;
                sim.sleep(plane.delay()).await;
                #[cfg(feature = "simcheck")]
                observe_run(run_start, i + 1, sim.now().as_nanos());
                i += 1;
                run_start = i;
            }
            FaultDecision::Drop | FaultDecision::Corrupt => {
                stats.faults += 1;
                if run_start < i {
                    path.transfer(run_bytes(run_start, i), per_packet_overhead)
                        .await;
                    #[cfg(feature = "simcheck")]
                    observe_run(run_start, i, sim.now().as_nanos());
                }
                // No NAKs and no dup-ACKs: every recovery waits out the
                // firmware resend timer.
                let mut attempt = 0u32;
                loop {
                    let exp = attempt.min(tuning.max_backoff_exp);
                    sim.sleep(tuning.resend_timeout * (1u64 << exp)).await;
                    sim.note_rto_fire();
                    stats.rto_fires += 1;
                    sim.note_retransmits(1);
                    stats.retransmits += 1;
                    attempt += 1;
                    let delivered = attempt > tuning.max_retries
                        || matches!(
                            plane.judge(sim, stream),
                            FaultDecision::Deliver | FaultDecision::Delay
                        );
                    if delivered {
                        path.transfer(run_bytes(i, i + 1), per_packet_overhead)
                            .await;
                        #[cfg(feature = "simcheck")]
                        observe_run(i, i + 1, sim.now().as_nanos());
                        break;
                    }
                    stats.faults += 1;
                }
                i += 1;
                run_start = i;
            }
        }
    }
    if run_start < npkts {
        path.transfer(run_bytes(run_start, npkts), per_packet_overhead)
            .await;
        #[cfg(feature = "simcheck")]
        observe_run(run_start, npkts, sim.now().as_nanos());
    }

    // The message ACK rides back to the sender. Losing it replays the
    // whole message: the firmware cannot tell a lost message from a lost
    // ACK, and the receiver's replay filter absorbs the duplicate.
    let mut ack_attempt = 0u32;
    loop {
        match plane.judge(sim, stream) {
            FaultDecision::Deliver => break,
            FaultDecision::Delay => {
                stats.faults += 1;
                sim.sleep(plane.delay()).await;
                break;
            }
            FaultDecision::Drop | FaultDecision::Corrupt => {
                stats.faults += 1;
                if ack_attempt >= tuning.max_retries {
                    break;
                }
                let exp = ack_attempt.min(tuning.max_backoff_exp);
                sim.sleep(tuning.resend_timeout * (1u64 << exp)).await;
                sim.note_rto_fire();
                stats.rto_fires += 1;
                // Duplicate flight of the whole message: real wire time,
                // dropped at the receiver's matching layer.
                path.transfer(bytes, per_packet_overhead).await;
                sim.note_retransmits(npkts);
                stats.retransmits += npkts;
                stats.duplicates += 1;
                ack_attempt += 1;
            }
        }
    }

    #[cfg(feature = "simcheck")]
    {
        let now = Some(sim.now().as_nanos());
        let _ = oracle.finish(now);
        // An ACK loss replays the whole message, so the per-fault budget is
        // the message's packet count.
        let _ = simcheck::fault::check_retransmit_bound(
            "mx",
            stream,
            stats.faults,
            stats.retransmits,
            npkts,
            now,
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ByteRate, FaultConfig, Pipe, Stage};

    fn test_path(sim: &Sim) -> Pipeline {
        let stages = vec![
            Stage::new(
                Pipe::new(sim, ByteRate::from_gbps(10), SimDuration::ZERO),
                SimDuration::from_nanos(400),
            ),
            Stage::new(
                Pipe::new(sim, ByteRate::from_gbps(10), SimDuration::ZERO),
                SimDuration::from_nanos(200),
            ),
        ];
        Pipeline::new(sim, stages, Bytes::new(4096))
    }

    fn run(plane: FaultPlane, bytes: u64) -> (f64, MxResendStats, simnet::SimStats) {
        let sim = Sim::new();
        let path = test_path(&sim);
        let stats = sim.block_on({
            let sim2 = sim.clone();
            async move {
                transfer_with_resend(
                    &sim2,
                    &plane,
                    &path,
                    5,
                    Bytes::new(bytes),
                    Bytes::new(4096),
                    Bytes::new(16),
                    &MxTuning::myri(),
                )
                .await
            }
        });
        (sim.now().as_micros_f64(), stats, sim.stats())
    }

    #[test]
    fn disabled_plane_is_bit_identical_to_plain_transfer() {
        let sim = Sim::new();
        let path = test_path(&sim);
        sim.block_on(async move {
            path.transfer(Bytes::new(1 << 20), Bytes::new(16)).await;
        });
        let baseline = sim.now().as_nanos();
        let (t, stats, sstats) = run(FaultPlane::disabled(), 1 << 20);
        assert_eq!((t * 1000.0).round() as u64, baseline);
        assert_eq!(stats, MxResendStats::default());
        assert_eq!(sstats.faults_injected, 0);
        assert_eq!(sstats.retransmits, 0);
    }

    #[test]
    fn loss_slows_the_transfer_and_counts_recovery_work() {
        let (t_clean, _, _) = run(FaultPlane::disabled(), 1 << 20);
        // 1% loss over 256 packets (+1 ACK judge): expect several faults.
        let plane = FaultPlane::new(FaultConfig::loss(10_000, 99));
        let (t_lossy, stats, sstats) = run(plane, 1 << 20);
        assert!(stats.faults > 0, "1% loss over 256 packets injected none");
        assert!(stats.retransmits > 0);
        assert_eq!(stats.rto_fires, stats.retransmits - 255 * stats.duplicates);
        assert!(
            t_lossy > t_clean,
            "recovery must cost time: {t_lossy:.1} vs {t_clean:.1} µs"
        );
        assert_eq!(sstats.faults_injected, stats.faults);
        assert_eq!(sstats.retransmits, stats.retransmits);
        assert_eq!(sstats.rto_fires, stats.rto_fires);
    }

    #[test]
    fn ack_loss_replays_the_whole_message_across_seeds() {
        let mut saw_duplicate = false;
        for seed in 0..64u64 {
            let plane = FaultPlane::new(FaultConfig::loss(200_000, seed));
            let (_, stats, _) = run(plane, 4 * 4096);
            if stats.duplicates > 0 {
                saw_duplicate = true;
                assert!(
                    stats.retransmits >= 4 * stats.duplicates,
                    "each duplicate must account a whole-message replay"
                );
            }
        }
        assert!(saw_duplicate, "no seed exercised the ACK-loss replay path");
    }

    #[test]
    fn recovery_is_deterministic() {
        let mk = || FaultPlane::new(FaultConfig::loss(10_000, 4242));
        let (t1, s1, _) = run(mk(), 1 << 20);
        let (t2, s2, _) = run(mk(), 1 << 20);
        assert!((t1 - t2).abs() < f64::EPSILON);
        assert_eq!(s1, s2);
    }

    #[test]
    fn pathological_rates_still_terminate_with_exact_accounting() {
        // 100% drop, 2 packets. Each packet: 1 initial fault + 16 failed
        // re-judges = 17 faults, 17 timer-driven resends. The ACK then
        // fails 17 times (16 replays of the 2-packet message before the
        // retry budget forces completion).
        let plane = FaultPlane::new(FaultConfig::loss(1_000_000, 1));
        let (_, stats, _) = run(plane, 2 * 4096);
        assert_eq!(stats.faults, 17 + 17 + 17);
        assert_eq!(stats.retransmits, 17 + 17 + 16 * 2);
        assert_eq!(stats.duplicates, 16);
        assert_eq!(stats.rto_fires, 17 + 17 + 16);
    }

    #[test]
    fn delay_faults_delay_without_retransmitting() {
        let sim = Sim::new();
        let path = test_path(&sim);
        let plane = FaultPlane::new(FaultConfig {
            drop_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 1_000_000,
            delay: SimDuration::from_micros(50),
            seed: 3,
        });
        let stats = sim.block_on({
            let sim2 = sim.clone();
            async move {
                transfer_with_resend(
                    &sim2,
                    &plane,
                    &path,
                    1,
                    Bytes::new(2 * 4096),
                    Bytes::new(4096),
                    Bytes::new(16),
                    &MxTuning::myri(),
                )
                .await
            }
        });
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.duplicates, 0);
        // Two data packets + the ACK, all delayed 50 µs.
        assert_eq!(stats.faults, 3);
        assert!(sim.now().as_micros_f64() >= 150.0, "three 50 µs delays");
    }
}
